package obs_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"saqp/internal/obs"
)

func TestHistogramBucketing(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("saqp_test_values_seconds", []float64{1, 2, 5})

	cases := []struct {
		v      float64
		accept bool
	}{
		{0, true},             // below the first bound → first bucket
		{1, true},             // exactly on a bound → that bucket (le is inclusive)
		{1.5, true},           // interior
		{5, true},             // on the last finite bound
		{100, true},           // above every bound → +Inf overflow bucket
		{math.Inf(1), true},   // +Inf itself lands in the overflow bucket
		{-0.5, false},         // negative rejected
		{math.NaN(), false},   // NaN rejected
		{math.Inf(-1), false}, // -Inf rejected
	}
	for _, c := range cases {
		if got := h.Observe(c.v); got != c.accept {
			t.Errorf("Observe(%v) accepted=%v, want %v", c.v, got, c.accept)
		}
	}

	s := h.Snapshot()
	wantCounts := []uint64{2, 1, 1, 2} // le=1, le=2, le=5, +Inf
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("counts len = %d, want %d", len(s.Counts), len(wantCounts))
	}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if s.Rejected != 3 {
		t.Errorf("rejected = %d, want 3", s.Rejected)
	}
}

func TestHistogramRejectsBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets should panic")
		}
	}()
	obs.NewRegistry().Histogram("saqp_test_bad_seconds", []float64{2, 1})
}

func TestValidateName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name should panic")
		}
	}()
	obs.NewRegistry().Counter("saqp-bad-name")
}

// TestPrometheusFormat checks the exposition against the text-format
// grammar: TYPE lines, cumulative non-decreasing buckets ending in +Inf,
// and _count consistency.
func TestPrometheusFormat(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("saqp_test_events_total").Add(3)
	r.Gauge("saqp_test_depth").Set(-2.5)
	h := r.Histogram("saqp_test_latency_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(50)
	r.Help("saqp_test_events_total", "events seen")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP saqp_test_events_total events seen\n",
		"# TYPE saqp_test_events_total counter\nsaqp_test_events_total 3\n",
		"# TYPE saqp_test_depth gauge\nsaqp_test_depth -2.5\n",
		"# TYPE saqp_test_latency_seconds histogram\n",
		`saqp_test_latency_seconds_bucket{le="1"} 1`,
		`saqp_test_latency_seconds_bucket{le="10"} 1`,
		`saqp_test_latency_seconds_bucket{le="+Inf"} 2`,
		"saqp_test_latency_seconds_sum 50.5\n",
		"saqp_test_latency_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Every sample line must be "name{labels} value" or "name value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestExpositionDeterministic: two registries fed identically serialise
// byte-identically (metric creation order must not matter).
func TestExpositionDeterministic(t *testing.T) {
	fill := func(order []string) string {
		r := obs.NewRegistry()
		for _, name := range order {
			r.Counter(name).Inc()
		}
		r.Histogram("saqp_test_h_seconds", nil).Observe(2)
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := fill([]string{"saqp_test_b_total", "saqp_test_a_total", "saqp_test_c_total"})
	b := fill([]string{"saqp_test_c_total", "saqp_test_b_total", "saqp_test_a_total"})
	if a != b {
		t.Fatalf("exposition depends on creation order:\n%s\nvs\n%s", a, b)
	}

	r := obs.NewRegistry()
	r.Counter("saqp_test_a_total").Inc()
	j1, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("SnapshotJSON not stable across calls")
	}
}

func TestCounterMonotone(t *testing.T) {
	c := obs.NewRegistry().Counter("saqp_test_mono_total")
	c.Add(2)
	c.Add(-5)         // ignored
	c.Add(math.NaN()) // ignored
	if v := c.Value(); v != 2 {
		t.Fatalf("counter = %v, want 2", v)
	}
}
