package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"saqp/internal/obs"
)

// TestEmptyRegistryOutputs pins the empty-registry contract the admin
// endpoint relies on: Prometheus exposition is empty (not an error) and
// the JSON snapshot is a complete document with empty sections.
func TestEmptyRegistryOutputs(t *testing.T) {
	r := obs.NewRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("empty registry exposition failed: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty registry wrote %q, want nothing", buf.String())
	}
	b, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}"
	if string(b) != want {
		t.Errorf("empty registry snapshot = %s, want %s", b, want)
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("saqp_test_exemplar_seconds", []float64{1, 10})

	// Plain Observe records no exemplar.
	h.Observe(0.5)
	if s := h.Snapshot(); s.Exemplars != nil {
		t.Fatalf("Observe recorded an exemplar: %+v", s.Exemplars)
	}

	// The worst sample per bucket wins; ties keep the earlier trace so
	// replays stay deterministic.
	h.ObserveExemplar(0.3, "trace-a")
	h.ObserveExemplar(0.7, "trace-b") // worse → replaces a
	h.ObserveExemplar(0.7, "trace-c") // tie → b stays
	h.ObserveExemplar(5, "trace-d")   // second bucket
	h.ObserveExemplar(100, "")        // +Inf bucket, no trace → no exemplar
	if ok := h.ObserveExemplar(-1, "trace-e"); ok {
		t.Fatal("negative observation accepted")
	}

	s := h.Snapshot()
	if len(s.Exemplars) != 3 {
		t.Fatalf("exemplars = %+v, want one slot per bucket (3)", s.Exemplars)
	}
	if s.Exemplars[0].TraceID != "trace-b" || s.Exemplars[0].Value != 0.7 {
		t.Errorf("bucket 0 exemplar = %+v, want trace-b@0.7", s.Exemplars[0])
	}
	if s.Exemplars[1].TraceID != "trace-d" {
		t.Errorf("bucket 1 exemplar = %+v, want trace-d", s.Exemplars[1])
	}
	if s.Exemplars[2].TraceID != "" {
		t.Errorf("+Inf exemplar = %+v, want empty (no trace supplied)", s.Exemplars[2])
	}

	// Exemplars are JSON-snapshot-only: the 0.0.4 text format has no
	// exemplar syntax, so the exposition must not mention traces.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "trace-") {
		t.Errorf("Prometheus exposition leaked exemplars:\n%s", buf.String())
	}
}

// TestHistogramExemplarDeterminism replays the same seeded observation
// sequence twice and demands byte-identical snapshots.
func TestHistogramExemplarDeterminism(t *testing.T) {
	run := func() []byte {
		r := obs.NewRegistry()
		h := r.Histogram("saqp_test_replay_seconds", nil)
		// A fixed LCG stands in for a seeded replay's latency stream.
		state := uint64(2018)
		for i := 0; i < 500; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			v := float64(state%100000) / 100
			h.ObserveExemplar(v, obs.TraceID("q", "cat", uint64(i)))
		}
		b, err := r.SnapshotJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("identical observation replays snapshot differently")
	}
}
