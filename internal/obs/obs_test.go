package obs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"saqp/internal/obs"
)

// replay drives one fixed event sequence through an observer — a
// miniature two-job query run with a hoarded reduce, a preemption, a
// speculative attempt and scheduler decisions.
func replay(o *obs.Observer) {
	o.RunStarted("SWRD")
	o.ClusterInfo(2, 2, 1)
	o.QueryArrived(0, "q1", 2, 10e9)
	o.JobSubmitted(0, 10, "q1", "q1/J1", "Join", 2, 1)
	o.SchedulerDecision(10, "SWRD", false, "q1/J1", []obs.Candidate{
		{Job: "q1/J1", Query: "q1", WRD: 42.5, Running: 0, Submit: 0},
	})
	o.TaskStarted(10, "q1", "q1/J1", "Join", false, 0, 0, 0, 5, false)
	o.TaskStarted(10, "q1", "q1/J1", "Join", true, 0, 1, 1, 8, true)
	o.ReducePreempted(12, "q1", "q1/J1", 0, 1, 2)
	o.SpeculativeLaunched(14, "q1", "q1/J1", false, 0, 0, 3)
	o.TaskFinished(15, 10, "q1", "q1/J1", "Join", false, 0, 0, 0, 5, false, false)
	o.ShuffleReady(15, "q1", "q1/J1", "Join", 1)
	o.TaskFinished(24, 16, "q1", "q1/J1", "Join", true, 0, 1, 1, 8, true, false)
	o.JobFinished(24, 0, "q1", "q1/J1", "Join")
	o.SchedulerDecision(24, "SWRD", true, "", nil)
	o.QueryFinished(24, 0, "q1")
}

// TestNilObserverAllocatesNothing is the zero-overhead guarantee for
// uninstrumented runs: every hook on a nil *Observer must return without
// allocating.
func TestNilObserverAllocatesNothing(t *testing.T) {
	var o *obs.Observer
	if avg := testing.AllocsPerRun(100, func() { replay(o) }); avg != 0 {
		t.Fatalf("nil observer hooks allocate %v times per replay, want 0", avg)
	}
	if err := o.Close(); err != nil {
		t.Fatalf("nil observer Close: %v", err)
	}
}

// TestTraceDeterministic: replaying the same event sequence through two
// observers yields byte-identical trace JSON, and the output is a valid
// JSON array of trace events.
func TestTraceDeterministic(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		sink := obs.NewTraceSink(&buf)
		o := obs.New(sink)
		replay(o)
		if err := o.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := emit(), emit()
	if !bytes.Equal(a, b) {
		t.Fatalf("trace output differs between identical replays:\n%s\nvs\n%s", a, b)
	}

	var events []map[string]any
	if err := json.Unmarshal(a, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, a)
	}
	if len(events) == 0 {
		t.Fatal("no trace events emitted")
	}
	phases := map[string]int{}
	for _, e := range events {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event missing %q: %v", key, e)
			}
		}
		phases[e["ph"].(string)]++
	}
	if phases["M"] == 0 || phases["X"] == 0 || phases["i"] == 0 {
		t.Fatalf("expected metadata, span and instant events, got %v", phases)
	}
}

// TestTraceQueryJobTaskNesting checks the track layout: the query span
// and its job span share one per-query process, and the task spans live
// on slot tracks of the shared cluster processes.
func TestTraceQueryJobTaskNesting(t *testing.T) {
	var buf bytes.Buffer
	o := obs.New(obs.NewTraceSink(&buf))
	replay(o)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	var queryPid, jobPid, mapTaskPid, redTaskPid float64
	for _, e := range events {
		if e["ph"] != "X" {
			continue
		}
		switch e["name"] {
		case "query q1":
			queryPid = e["pid"].(float64)
		case "q1/J1 (Join)":
			jobPid = e["pid"].(float64)
		case "q1/J1 m0":
			mapTaskPid = e["pid"].(float64)
		case "q1/J1 r0":
			redTaskPid = e["pid"].(float64)
		}
	}
	if queryPid == 0 || queryPid != jobPid {
		t.Errorf("query span (pid %v) and job span (pid %v) should share a process", queryPid, jobPid)
	}
	if mapTaskPid != obs.PidMapSlots {
		t.Errorf("map task span on pid %v, want %d", mapTaskPid, obs.PidMapSlots)
	}
	if redTaskPid != obs.PidReduceSlots {
		t.Errorf("reduce task span on pid %v, want %d", redTaskPid, obs.PidReduceSlots)
	}
}

func TestTraceCloseEmpty(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewTraceSink(&buf)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v (%q)", err, buf.String())
	}
	if len(events) != 0 {
		t.Fatalf("empty trace has %d events", len(events))
	}
}

// TestObserverMetrics spot-checks that the replayed lifecycle feeds the
// registry the right counters.
func TestObserverMetrics(t *testing.T) {
	o := obs.New(nil)
	replay(o)
	want := map[string]float64{
		obs.MQueriesSubmitted:    1,
		obs.MQueriesCompleted:    1,
		obs.MJobsSubmitted:       1,
		obs.MJobsCompleted:       1,
		obs.MMapTasksDone:        1,
		obs.MReduceTasksDone:     1,
		obs.MReduceHoards:        1,
		obs.MReducePreemptions:   1,
		obs.MSpeculativeLaunches: 1,
		obs.MSchedDecisions:      2,
		obs.MSchedIdleDecisions:  1,
	}
	for name, v := range want {
		if got := o.Metrics.Counter(name).Value(); got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
}

// TestDriftSummary verifies the recorder against hand-computed accuracy
// numbers for a tiny sample set.
func TestDriftSummary(t *testing.T) {
	d := obs.NewDriftRecorder()
	// predictions 9, 22 against actuals 10, 20:
	// rel errors 0.1 and 0.1 → mean 0.1
	d.RecordJob("Join", 9, 10, false)
	d.RecordJob("Join", 22, 20, false)
	d.RecordJob("Extract", 5, 0, false) // zero actual: excluded from MeanRelError
	s := d.Snapshot()
	if len(s.Jobs) != 2 {
		t.Fatalf("categories = %d, want 2", len(s.Jobs))
	}
	if s.Jobs[0].Category != "Extract" || s.Jobs[1].Category != "Join" {
		t.Fatalf("categories not sorted: %v, %v", s.Jobs[0].Category, s.Jobs[1].Category)
	}
	join := s.Jobs[1]
	if math.Abs(join.MeanRelError-0.1) > 1e-12 {
		t.Errorf("Join mean rel err = %v, want 0.1", join.MeanRelError)
	}
	// ssRes = 1+4 = 5; mean = 15; ssTot = (10-15)² + (20-15)² = 50 → R² = 0.9.
	if math.Abs(join.RSquared-0.9) > 1e-9 {
		t.Errorf("Join R² = %v, want 0.9", join.RSquared)
	}
	if ext := s.Jobs[0]; ext.MeanRelError != 0 || ext.N != 1 {
		t.Errorf("Extract summary = %+v, want zero rel error over 1 sample", ext)
	}

	j1, err := d.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := d.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("drift snapshot JSON not stable")
	}
}

// TestSchedulerDecisionArgs: the hand-built candidates JSON must parse.
func TestSchedulerDecisionArgs(t *testing.T) {
	var buf bytes.Buffer
	o := obs.New(obs.NewTraceSink(&buf))
	o.SchedulerDecision(1, "SWRD", false, "a", []obs.Candidate{
		{Job: "a", Query: `q"uote`, WRD: math.Inf(1), Running: 3, Submit: 0.5},
		{Job: "b", Query: "q2", WRD: 7, Running: 0, Submit: 1},
	})
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Args struct {
			Candidates []struct {
				Job     string   `json:"job"`
				Query   string   `json:"query"`
				WRD     *float64 `json:"wrd"`
				Running int      `json:"running"`
			} `json:"candidates"`
		} `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("decision event not valid JSON: %v\n%s", err, buf.String())
	}
	cands := events[0].Args.Candidates
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
	if cands[0].Query != `q"uote` {
		t.Errorf("query not quoted correctly: %q", cands[0].Query)
	}
	if cands[0].WRD != nil {
		t.Errorf("infinite WRD should serialise as null, got %v", *cands[0].WRD)
	}
	if cands[1].WRD == nil || *cands[1].WRD != 7 {
		t.Errorf("finite WRD lost: %v", cands[1].WRD)
	}
}

// TestSchedulerDecisionTruncation: long candidate queues are capped in
// the trace (the winner is always kept) while queue_depth reports the
// uncapped count — this bounds trace size under heavy queueing.
func TestSchedulerDecisionTruncation(t *testing.T) {
	long := make([]obs.Candidate, 40)
	for i := range long {
		long[i] = obs.Candidate{Job: "j" + string(rune('a'+i%26)) + "-" + string(rune('0'+i/26)), Query: "q", WRD: float64(i)}
	}
	long[0].Job, long[37].Job = "head", "winner"
	var buf bytes.Buffer
	o := obs.New(obs.NewTraceSink(&buf))
	o.SchedulerDecision(1, "SWRD", false, "winner", long)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Args struct {
			QueueDepth int `json:"queue_depth"`
			Candidates []struct {
				Job string `json:"job"`
			} `json:"candidates"`
		} `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("decision event not valid JSON: %v\n%s", err, buf.String())
	}
	a := events[0].Args
	if a.QueueDepth != 40 {
		t.Errorf("queue_depth = %d, want 40", a.QueueDepth)
	}
	if len(a.Candidates) != 9 { // cap of 8 plus the out-of-window winner
		t.Fatalf("recorded candidates = %d, want 9", len(a.Candidates))
	}
	if a.Candidates[0].Job != "head" {
		t.Errorf("head of queue dropped: %q", a.Candidates[0].Job)
	}
	if a.Candidates[8].Job != "winner" {
		t.Errorf("winner not retained after truncation: %q", a.Candidates[8].Job)
	}
}
