package obs

// SLO tracking: per-scheduler latency/error-budget objectives evaluated
// with multi-window burn rates over *virtual* time. The serving engine
// has no shared wall clock — each query runs on its own pool simulator —
// so the tracker's clock is the cumulative simulated seconds of
// completed queries, which makes every burn-rate evaluation and alert
// transition deterministic for a fixed seeded replay.
//
// The evaluation is the standard multi-window multi-burn-rate policy
// (Google SRE workbook): an alert fires only when both a fast window
// (5-minute-equivalent: catches cliffs) and a slow window
// (1-hour-equivalent: rejects blips) burn the error budget faster than
// their thresholds, and resolves when either drops back under.

import (
	"encoding/json"
	"sync"
)

// Default SLO parameters, used for zero fields in SLOConfig.
const (
	// DefSLOLatencySec is the default latency objective: the simulated
	// response-time bound a query must meet to count as good.
	DefSLOLatencySec = 300.0
	// DefSLOTarget is the default objective target (fraction of queries
	// that must be good).
	DefSLOTarget = 0.95
	// DefSLOFastWindowSec is the 5-minute-equivalent fast window.
	DefSLOFastWindowSec = 300.0
	// DefSLOSlowWindowSec is the 1-hour-equivalent slow window.
	DefSLOSlowWindowSec = 3600.0
	// DefSLOFastBurn is the fast-window burn-rate alert threshold.
	DefSLOFastBurn = 14.4
	// DefSLOSlowBurn is the slow-window burn-rate alert threshold.
	DefSLOSlowBurn = 6.0
)

// SLOConfig parameterises one latency objective. The zero value of any
// field selects its Def* default; Name labels the objective (typically
// the scheduler under test).
type SLOConfig struct {
	Name string `json:"name"`
	// LatencyObjectiveSec bounds a good query's simulated response time.
	LatencyObjectiveSec float64 `json:"latency_objective_sec"`
	// Target is the fraction of queries that must meet the objective.
	Target float64 `json:"target"`
	// FastWindowSec and SlowWindowSec are the burn-rate evaluation
	// windows in virtual seconds.
	FastWindowSec float64 `json:"fast_window_sec"`
	SlowWindowSec float64 `json:"slow_window_sec"`
	// FastBurnThreshold and SlowBurnThreshold gate the alert: both must
	// be exceeded to fire.
	FastBurnThreshold float64 `json:"fast_burn_threshold"`
	SlowBurnThreshold float64 `json:"slow_burn_threshold"`
}

// withDefaults fills zero fields with the Def* defaults.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyObjectiveSec <= 0 {
		c.LatencyObjectiveSec = DefSLOLatencySec
	}
	if c.Target <= 0 || c.Target >= 1 {
		c.Target = DefSLOTarget
	}
	if c.FastWindowSec <= 0 {
		c.FastWindowSec = DefSLOFastWindowSec
	}
	if c.SlowWindowSec <= 0 {
		c.SlowWindowSec = DefSLOSlowWindowSec
	}
	if c.SlowWindowSec < c.FastWindowSec {
		c.SlowWindowSec = c.FastWindowSec
	}
	if c.FastBurnThreshold <= 0 {
		c.FastBurnThreshold = DefSLOFastBurn
	}
	if c.SlowBurnThreshold <= 0 {
		c.SlowBurnThreshold = DefSLOSlowBurn
	}
	return c
}

// SLOState is one Record evaluation's outcome.
type SLOState struct {
	// FastBurn and SlowBurn are the windowed burn rates after the sample.
	FastBurn float64
	SlowBurn float64
	// Firing reports the alert state after the sample; Transition marks
	// that this sample flipped it (fire or resolve).
	Firing     bool
	Transition bool
	// Bad reports how the sample was classified.
	Bad bool
}

// SLOAlert is one deterministic alert-log entry.
type SLOAlert struct {
	// AtVirtualSec is the tracker's virtual clock at the transition.
	AtVirtualSec float64 `json:"at_virtual_sec"`
	// State is "fire" or "resolve".
	State string `json:"state"`
	// FastBurn and SlowBurn are the burn rates at the transition.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
}

// SLOStatus is a point-in-time summary for engine stats.
type SLOStatus struct {
	FastBurn float64
	SlowBurn float64
	Firing   bool
	Alerts   int
	Good     uint64
	Bad      uint64
}

// SLOSnapshot is the JSON form of a tracker.
type SLOSnapshot struct {
	Config        SLOConfig  `json:"config"`
	VirtualSec    float64    `json:"virtual_sec"`
	Good          uint64     `json:"good"`
	Bad           uint64     `json:"bad"`
	WindowSamples int        `json:"window_samples"`
	FastBurn      float64    `json:"fast_burn"`
	SlowBurn      float64    `json:"slow_burn"`
	Firing        bool       `json:"firing"`
	Alerts        []SLOAlert `json:"alerts"`
	AlertsDropped uint64     `json:"alerts_dropped"`
}

// maxSLOAlerts bounds the alert log; a healthy objective transitions
// rarely, so hitting the cap signals flapping worth investigating —
// further transitions are counted, not stored.
const maxSLOAlerts = 1024

// sloSample is one classified completion on the virtual timeline.
type sloSample struct {
	t   float64
	bad bool
}

// SLOTracker evaluates one latency objective over a virtual-time sample
// stream. Safe for concurrent use.
type SLOTracker struct {
	mu      sync.Mutex
	cfg     SLOConfig
	now     float64     // virtual clock: cumulative recorded seconds
	samples []sloSample // ascending t, pruned beyond the slow window
	good    uint64
	bad     uint64
	fast    float64
	slow    float64
	firing  bool
	alerts  []SLOAlert
	dropped uint64
}

// NewSLOTracker builds a tracker, filling zero config fields with
// defaults.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	return &SLOTracker{cfg: cfg.withDefaults()}
}

// Config returns the tracker's effective (default-filled) configuration.
func (s *SLOTracker) Config() SLOConfig {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// Record classifies one completed query — bad when it failed or its
// latency exceeds the objective — advances the virtual clock by
// latencySec, re-evaluates both burn windows, and returns the resulting
// state (including whether the alert transitioned).
func (s *SLOTracker) Record(latencySec float64, failed bool) SLOState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if latencySec < 0 || latencySec != latencySec {
		latencySec = 0
	}
	s.now += latencySec
	isBad := failed || latencySec > s.cfg.LatencyObjectiveSec
	if isBad {
		s.bad++
	} else {
		s.good++
	}
	s.samples = append(s.samples, sloSample{t: s.now, bad: isBad})
	// Prune anything older than the slow window.
	cut := s.now - s.cfg.SlowWindowSec
	drop := 0
	for drop < len(s.samples) && s.samples[drop].t < cut {
		drop++
	}
	if drop > 0 {
		s.samples = append(s.samples[:0], s.samples[drop:]...)
	}
	s.fast = s.burnLocked(s.cfg.FastWindowSec)
	s.slow = s.burnLocked(s.cfg.SlowWindowSec)
	shouldFire := s.fast >= s.cfg.FastBurnThreshold && s.slow >= s.cfg.SlowBurnThreshold
	transition := shouldFire != s.firing
	if transition {
		s.firing = shouldFire
		state := "resolve"
		if shouldFire {
			state = "fire"
		}
		if len(s.alerts) < maxSLOAlerts {
			s.alerts = append(s.alerts, SLOAlert{
				AtVirtualSec: s.now, State: state, FastBurn: s.fast, SlowBurn: s.slow,
			})
		} else {
			s.dropped++
		}
	}
	return SLOState{FastBurn: s.fast, SlowBurn: s.slow, Firing: s.firing,
		Transition: transition, Bad: isBad}
}

// burnLocked computes the burn rate over the trailing window: the bad
// fraction of in-window samples divided by the error budget (1-target).
// No samples means no burn.
func (s *SLOTracker) burnLocked(windowSec float64) float64 {
	cut := s.now - windowSec
	total, bad := 0, 0
	for i := len(s.samples) - 1; i >= 0; i-- {
		if s.samples[i].t < cut {
			break
		}
		total++
		if s.samples[i].bad {
			bad++
		}
	}
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - s.cfg.Target)
}

// Status summarises the tracker for engine stats.
func (s *SLOTracker) Status() SLOStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SLOStatus{FastBurn: s.fast, SlowBurn: s.slow, Firing: s.firing,
		Alerts: len(s.alerts) + int(s.dropped), Good: s.good, Bad: s.bad}
}

// Alerts returns a copy of the deterministic alert log.
func (s *SLOTracker) Alerts() []SLOAlert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SLOAlert(nil), s.alerts...)
}

// Snapshot copies the tracker state.
func (s *SLOTracker) Snapshot() SLOSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SLOSnapshot{
		Config: s.cfg, VirtualSec: s.now, Good: s.good, Bad: s.bad,
		WindowSamples: len(s.samples), FastBurn: s.fast, SlowBurn: s.slow,
		Firing: s.firing, Alerts: append([]SLOAlert{}, s.alerts...),
		AlertsDropped: s.dropped,
	}
}

// SnapshotJSON serialises the tracker as deterministic indented JSON.
func (s *SLOTracker) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(s.Snapshot(), "", "  ")
}

// SLO metric names.
const (
	MSLOGoodTotal   = "saqp_slo_good_total"
	MSLOBadTotal    = "saqp_slo_bad_total"
	MSLOFastBurn    = "saqp_slo_fast_burn_rate"
	MSLOSlowBurn    = "saqp_slo_slow_burn_rate"
	MSLOFiring      = "saqp_slo_firing"
	MSLOTransitions = "saqp_slo_transitions_total"
)

// SLORecorded publishes one SLO evaluation to the metrics registry:
// good/bad counters, the burn-rate and firing gauges, and the alert
// transition counter.
func (o *Observer) SLORecorded(st SLOState) {
	if o == nil || o.Metrics == nil {
		return
	}
	if st.Bad {
		o.Metrics.Counter(MSLOBadTotal).Inc()
	} else {
		o.Metrics.Counter(MSLOGoodTotal).Inc()
	}
	o.Metrics.Gauge(MSLOFastBurn).Set(st.FastBurn)
	o.Metrics.Gauge(MSLOSlowBurn).Set(st.SlowBurn)
	firing := 0.0
	if st.Firing {
		firing = 1
	}
	o.Metrics.Gauge(MSLOFiring).Set(firing)
	if st.Transition {
		o.Metrics.Counter(MSLOTransitions).Inc()
	}
}
