package obs

// Online-learning instrumentation: the model-lifecycle registry
// (internal/learn) reports feedback absorption, champion/challenger
// window error, confidence-interval width, and promotions here.
//
// The promotion trace instant is the one learn event with a timeline
// position; its "timestamp" is the job-sample count at promotion, not
// any clock — the registry has no notion of time — so seeded replays
// emit byte-identical events. The registry calls every method below
// under its own mutex, which is what makes writing to the un-locked
// TraceSink (and the learnMeta latch on Observer) safe: no other
// goroutine emits trace events while the serving engine is the only
// trace producer attached.

// Learn metric names.
const (
	MLearnJobSamples    = "saqp_learn_job_samples_total"
	MLearnTaskSamples   = "saqp_learn_task_samples_total"
	MLearnPromotions    = "saqp_learn_promotions_total"
	MLearnModelVersion  = "saqp_learn_model_version"
	MLearnChampionErr   = "saqp_learn_champion_window_rel_error"
	MLearnChallengerErr = "saqp_learn_challenger_window_rel_error"
	MLearnIntervalSec   = "saqp_learn_interval_width_seconds"
)

// LearnJobSample counts one absorbed job observation and updates the
// windowed relative-error gauges. A negative error means that window is
// still empty and leaves its gauge untouched.
func (o *Observer) LearnJobSample(championErr, challengerErr float64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(MLearnJobSamples).Inc()
	if championErr >= 0 {
		o.Metrics.Gauge(MLearnChampionErr).Set(championErr)
	}
	if challengerErr >= 0 {
		o.Metrics.Gauge(MLearnChallengerErr).Set(challengerErr)
	}
}

// LearnTaskSample counts one absorbed task observation.
func (o *Observer) LearnTaskSample() { o.counter(MLearnTaskSamples) }

// LearnIntervalWidth records the half-width of the challenger's 95%
// confidence band at the latest observed job's features.
func (o *Observer) LearnIntervalWidth(sec float64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Histogram(MLearnIntervalSec, nil).Observe(sec)
}

// LearnPromotion records a champion promotion: the promotions counter,
// the model-version gauge, and a trace instant on the model-lifecycle
// track positioned at the promotion's job-sample count. championErr is
// −1 for the cold-start bootstrap.
func (o *Observer) LearnPromotion(version, atJobSamples int, championErr, challengerErr float64) {
	if o == nil {
		return
	}
	if o.Metrics != nil {
		o.Metrics.Counter(MLearnPromotions).Inc()
		o.Metrics.Gauge(MLearnModelVersion).Set(float64(version))
	}
	if o.Trace == nil {
		return
	}
	if !o.learnMeta {
		o.learnMeta = true
		o.Trace.MetaProcessName(PidLearn, "model lifecycle")
		o.Trace.MetaThreadName(PidLearn, 0, "promotions")
	}
	o.Trace.Instant(PidLearn, 0, float64(atJobSamples), "promote v"+itoa(version), "learn",
		Arg{"version", version}, Arg{"at_job_samples", atJobSamples},
		Arg{"champion_err", championErr}, Arg{"challenger_err", challengerErr})
}
