package obs

// Network-frontend instrumentation: the TCP query server
// (internal/net) reports its connection and command lifecycle here —
// accepts, limit rejections, closes, per-command counts, wire parse
// errors, and backpressure refusals. Like the serving layer, net
// metrics are counts and gauges only; per-request causality stays in
// the span trees recorded by the serving engine underneath.

// Net metric names.
const (
	MNetConnsAccepted  = "saqp_net_connections_accepted_total"
	MNetConnsRejected  = "saqp_net_connections_rejected_total"
	MNetConnsClosed    = "saqp_net_connections_closed_total"
	MNetConnsActive    = "saqp_net_connections_active"
	MNetCommands       = "saqp_net_commands_total"
	MNetParseErrors    = "saqp_net_parse_errors_total"
	MNetBusyRejections = "saqp_net_busy_rejections_total"
	MNetUnknownCmds    = "saqp_net_unknown_commands_total"
)

// NetConnAccepted records one accepted connection and the resulting
// active-connection count.
func (o *Observer) NetConnAccepted(active int) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(MNetConnsAccepted).Inc()
	o.Metrics.Gauge(MNetConnsActive).Set(float64(active))
}

// NetConnRejected counts a connection refused by the connection limit.
func (o *Observer) NetConnRejected() { o.counter(MNetConnsRejected) }

// NetConnClosed records one connection ending and the resulting
// active-connection count.
func (o *Observer) NetConnClosed(active int) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(MNetConnsClosed).Inc()
	o.Metrics.Gauge(MNetConnsActive).Set(float64(active))
}

// NetCommand counts one dispatched wire command.
func (o *Observer) NetCommand() { o.counter(MNetCommands) }

// NetParseError counts one malformed wire frame (the connection closes
// after the error reply).
func (o *Observer) NetParseError() { o.counter(MNetParseErrors) }

// NetBusy counts one submission refused with -BUSY backpressure.
func (o *Observer) NetBusy() { o.counter(MNetBusyRejections) }

// NetUnknownCommand counts one command verb the server does not speak.
func (o *Observer) NetUnknownCommand() { o.counter(MNetUnknownCmds) }
