package obs

// Serving-layer instrumentation: the concurrent query-serving engine
// (internal/serve) reports its admission pipeline here — submissions,
// plan/estimate cache hits and misses, SWRD admission queue depth,
// in-flight pool occupancy, and per-query simulated response times.
//
// Serve metrics carry no shared-timeline trace events: the engine has
// no global virtual clock — each admitted query runs on its own pool
// simulator. Per-request causality lives in the span trees instead
// (span.go), which re-base each attempt onto a per-request timeline.
// Every value recorded here is either a count or a simulated duration,
// both deterministic for a fixed seed set, which preserves the layer's
// byte-identical-snapshot guarantee under serialized submission order.

// Serve metric names.
const (
	MServeSubmissions    = "saqp_serve_submissions_total"
	MServeCompletions    = "saqp_serve_completions_total"
	MServeCancellations  = "saqp_serve_cancellations_total"
	MServeRejections     = "saqp_serve_rejections_total"
	MServeErrors         = "saqp_serve_errors_total"
	MServeCacheHits      = "saqp_serve_cache_hits_total"
	MServeCacheMisses    = "saqp_serve_cache_misses_total"
	MServeCacheEvictions = "saqp_serve_cache_evictions_total"
	MServeQueueDepth     = "saqp_serve_queue_depth"
	MServeInflight       = "saqp_serve_inflight_queries"
	MServeSimResponseSec = "saqp_serve_sim_response_seconds"
	MServeAdmittedWRD    = "saqp_serve_admitted_wrd_seconds"
)

// counter bumps a named counter when metrics are attached.
func (o *Observer) counter(name string) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(name).Inc()
}

// ServeSubmitted counts one submission entering the serving engine.
func (o *Observer) ServeSubmitted() { o.counter(MServeSubmissions) }

// ServeCacheLookup records a plan/estimate cache outcome. A waiter that
// joined an in-flight computation counts as a hit: it paid no compile.
func (o *Observer) ServeCacheLookup(hit bool) {
	if hit {
		o.counter(MServeCacheHits)
	} else {
		o.counter(MServeCacheMisses)
	}
}

// ServeCacheEvicted counts one LRU eviction from the plan cache.
func (o *Observer) ServeCacheEvicted() { o.counter(MServeCacheEvictions) }

// ServeAdmitted records a query entering the SWRD admission queue with
// its Weighted Resource Demand and the resulting queue depth.
func (o *Observer) ServeAdmitted(wrd float64, queueDepth int) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Histogram(MServeAdmittedWRD, nil).Observe(wrd)
	o.Metrics.Gauge(MServeQueueDepth).Set(float64(queueDepth))
}

// ServeDequeued records a pool worker taking a query off the admission
// queue.
func (o *Observer) ServeDequeued(queueDepth, inflight int) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Gauge(MServeQueueDepth).Set(float64(queueDepth))
	o.Metrics.Gauge(MServeInflight).Set(float64(inflight))
}

// ServeCompleted records a successfully served query: its simulated
// response time and the remaining in-flight count. A non-empty traceID
// links the latency histogram's worst-per-bucket exemplar to the
// query's span tree.
func (o *Observer) ServeCompleted(simResponseSec float64, inflight int, traceID string) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(MServeCompletions).Inc()
	o.Metrics.Histogram(MServeSimResponseSec, nil).ObserveExemplar(simResponseSec, traceID)
	o.Metrics.Gauge(MServeInflight).Set(float64(inflight))
}

// ServeCanceled counts a query abandoned by context cancellation —
// either while queued or mid-run on a pool simulator.
func (o *Observer) ServeCanceled(inflight int) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(MServeCancellations).Inc()
	o.Metrics.Gauge(MServeInflight).Set(float64(inflight))
}

// ServeRejected counts a submission refused by a full admission queue.
func (o *Observer) ServeRejected() { o.counter(MServeRejections) }

// ServeError counts a submission that failed compile or estimation.
func (o *Observer) ServeError() { o.counter(MServeErrors) }
