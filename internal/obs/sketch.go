package obs

// Sketch-tier instrumentation: the probabilistic statistics tier
// (internal/sketch and its consumers) reports here — how many plan
// estimates were priced from sketch statistics, and how the engine's
// Bloom semi-join pruning performed (rows probed vs rows dropped before
// the shuffle). All values are counts, deterministic for a fixed seed
// and workload.

// Sketch metric names.
const (
	MSketchEstimates   = "saqp_sketch_estimates_total"
	MSketchBloomProbes = "saqp_sketch_bloom_probes_total"
	MSketchBloomPruned = "saqp_sketch_bloom_pruned_total"
)

// SketchEstimate counts one query estimate priced from the sketch
// statistics tier.
func (o *Observer) SketchEstimate() { o.counter(MSketchEstimates) }

// BloomPruneOutcome records one pruned shuffle side: probed rows entered
// the Bloom probe, pruned of them were dropped before the shuffle.
func (o *Observer) BloomPruneOutcome(probed, pruned int64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(MSketchBloomProbes).Add(float64(probed))
	o.Metrics.Counter(MSketchBloomPruned).Add(float64(pruned))
}
