package core

import (
	"saqp/internal/cluster"
	"saqp/internal/plan"
	"saqp/internal/predict"
	"saqp/internal/selectivity"
	"saqp/internal/trace"
)

// planJobType shortens the operator type in predictor signatures.
type planJobType = plan.JobType

// Percolated is a query ready for submission: a simulator query whose
// tasks carry ground-truth durations (drawn by the hidden cost model from
// the oracle estimate) and semantics-aware predicted times (derived from
// the estimator-visible estimate).
type Percolated struct {
	// Query is the scheduler-facing object.
	Query *cluster.Query
	// Estimate is the estimator-visible (not ground-truth) estimate whose
	// semantics were percolated.
	Estimate *selectivity.QueryEstimate
	// PredictedWRD is the query's Eq. 10 demand as the scheduler sees it.
	PredictedWRD float64
}

// Percolate attaches estimator-derived semantics to a query destined for
// the cluster:
//
//   - truth sizes the tasks and draws their hidden ground-truth durations;
//   - est drives the per-task time predictions the scheduler may consult.
//
// Task counts can differ slightly between the two estimates (they come
// from different statistics resolutions), so per-task predictions are
// rescaled to preserve the estimator's total WRD: the scheduler's view
// sums to exactly what the semantics-aware model predicts.
func Percolate(id string, truth, est *selectivity.QueryEstimate,
	cm *trace.CostModel, tm *predict.TaskModel) *Percolated {
	var pred cluster.TaskTimePredictor = cluster.ConstantPredictor(1)
	wrdEst := 0.0
	if tm != nil {
		wrdEst = tm.WRD(est)
		wrdTruth := tm.WRD(truth)
		f := 1.0
		if wrdTruth > 0 && wrdEst > 0 {
			f = wrdEst / wrdTruth
		}
		pred = scaledPredictor{tm: tm, factor: f}
	}
	q := cluster.BuildQuery(id, truth, cm, pred)
	return &Percolated{Query: q, Estimate: est, PredictedWRD: wrdEst}
}

// scaledPredictor scales a task model's predictions by a fixed factor,
// translating oracle-sized tasks into estimator-consistent totals.
type scaledPredictor struct {
	tm     *predict.TaskModel
	factor float64
}

// PredictTask implements cluster.TaskTimePredictor.
func (s scaledPredictor) PredictTask(op planJobType, reduce bool, in, out, pf float64) float64 {
	return s.factor * s.tm.PredictTask(op, reduce, in, out, pf)
}
