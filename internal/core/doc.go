// Package core implements the paper's cross-layer semantics percolation
// (Section 2.2): the bridge that carries query-level semantics from the
// Hive-style compiler down to the Hadoop-style scheduler.
//
// In stock Hive/Hadoop, a job arrives at the scheduler as an opaque unit —
// "all the query-level semantics are lost when Hadoop receives a job from
// Hive". Percolation attaches, to every job submitted for execution:
//
//   - the query DAG and inter-job dependencies,
//   - the estimated data flow (D_in/D_med/D_out from Section 3), and
//   - per-task predicted times from the multivariate model (Section 4),
//     from which the scheduler computes Weighted Resource Demand (Eq. 10).
//
// The scheduler-visible predictions are always derived from the
// *estimator's* statistics — never from ground truth — so scheduling
// quality inherits both selectivity-estimation error and time-model error,
// as it would in a real deployment.
package core
