// Package floats holds dependency-free floating-point helpers for the
// whole estimation stack. It is a leaf package (imports only math) so
// that histogram, selectivity, predict and trace — which sit *below*
// internal/core in the import graph — can use ApproxEqual without a
// cycle; internal/core re-exports it for callers above.
package floats
