package floats_test

import (
	"math"
	"testing"

	"saqp/internal/core/floats"
)

// The exhaustive table (NaN, infinities, denormals) lives in
// internal/core/approx_test.go against the core.ApproxEqual re-export;
// this test pins the leaf package's own behavior so it cannot drift if
// the re-export is ever bypassed.
func TestApproxEqualLeaf(t *testing.T) {
	if !floats.ApproxEqual(1, 1+1e-12, 1e-9) {
		t.Error("relative tolerance should accept 1 vs 1+1e-12 at eps=1e-9")
	}
	if floats.ApproxEqual(math.NaN(), math.NaN(), math.Inf(1)) {
		t.Error("NaN must not compare equal to anything")
	}
	if !floats.ApproxEqual(math.Inf(-1), math.Inf(-1), 0) {
		t.Error("same-sign infinities are equal")
	}
	if floats.ApproxEqual(0, 1e-9, 1e-12) {
		t.Error("absolute tolerance must reject 0 vs 1e-9 at eps=1e-12")
	}
}
