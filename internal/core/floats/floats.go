package floats

import "math"

// ApproxEqual reports whether a and b are equal within eps, combining
// an absolute and a relative tolerance:
//
//	|a-b| <= eps                      (absolute, for values near zero)
//	|a-b| <= eps * max(|a|, |b|)      (relative, for large magnitudes)
//
// Special cases follow comparison semantics rather than IEEE
// arithmetic: NaN is approximately equal to nothing (not even itself);
// infinities are approximately equal only to the same infinity; and
// eps = 0 degenerates to exact equality (with ±0 equal, as in Go).
// Denormal (subnormal) differences are handled by the absolute branch.
func ApproxEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= eps {
		return true
	}
	return diff <= eps*math.Max(math.Abs(a), math.Abs(b))
}
