package core

import "saqp/internal/core/floats"

// ApproxEqual reports whether a and b are equal within eps — the
// project's sanctioned float comparison, enforced by the saqpvet
// floatcmp analyzer in the estimator and predictor packages. It
// forwards to the leaf package internal/core/floats, which packages
// below core in the import graph (histogram, selectivity, predict,
// trace) import directly. See floats.ApproxEqual for the exact
// absolute+relative tolerance semantics and special cases.
func ApproxEqual(a, b, eps float64) bool {
	return floats.ApproxEqual(a, b, eps)
}
