package core_test

import (
	"math"
	"testing"

	"saqp/internal/core"
)

func TestApproxEqual(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	denorm := math.SmallestNonzeroFloat64 // 4.9e-324, subnormal
	cases := []struct {
		name string
		a, b float64
		eps  float64
		want bool
	}{
		// Exact and near-exact.
		{"identical", 1.5, 1.5, 0, true},
		{"pos-neg-zero", 0.0, math.Copysign(0, -1), 0, true},
		{"eps0-exact-only", 1.0, 1.0 + 1e-16, 0, true}, // 1+1e-16 rounds to 1
		{"eps0-differs", 1.0, 1.0000001, 0, false},

		// Absolute tolerance near zero.
		{"abs-within", 1e-12, 3e-12, 1e-9, true},
		{"abs-outside", 0, 2e-9, 1e-9, false},

		// Relative tolerance at magnitude.
		{"rel-within", 1e9, 1e9 * (1 + 1e-10), 1e-9, true},
		{"rel-outside", 1e9, 1e9 * (1 + 1e-8), 1e-9, false},
		{"rel-negative", -1e9, -1e9 * (1 + 1e-10), 1e-9, true},

		// NaN is equal to nothing, not even itself.
		{"nan-nan", nan, nan, 1e9, false},
		{"nan-left", nan, 1, 1e9, false},
		{"nan-right", 1, nan, 1e9, false},
		{"nan-vs-inf", nan, inf, 1e9, false},

		// Infinities: same sign only, regardless of eps.
		{"inf-inf", inf, inf, 0, true},
		{"neginf-neginf", -inf, -inf, 0, true},
		{"inf-neginf", inf, -inf, 1e300, false},
		{"inf-finite", inf, math.MaxFloat64, 1e300, false},

		// Denormals: the absolute branch must see subnormal differences.
		{"denorm-zero-within", denorm, 0, 1e-300, true},
		{"denorm-zero-eps0", denorm, 0, 0, false},
		{"denorm-pair", denorm, 2 * denorm, 1e-320, true},
		{"denorm-sign", denorm, -denorm, 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := core.ApproxEqual(c.a, c.b, c.eps); got != c.want {
				t.Errorf("ApproxEqual(%g, %g, %g) = %v, want %v", c.a, c.b, c.eps, got, c.want)
			}
			// Approximate equality is symmetric by construction.
			if got := core.ApproxEqual(c.b, c.a, c.eps); got != c.want {
				t.Errorf("ApproxEqual(%g, %g, %g) = %v, want %v (symmetry)", c.b, c.a, c.eps, got, c.want)
			}
		})
	}
}
