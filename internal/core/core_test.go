package core_test

import (
	"math"
	"testing"

	"saqp/internal/catalog"
	"saqp/internal/cluster"
	"saqp/internal/core"
	"saqp/internal/dataset"
	"saqp/internal/plan"
	"saqp/internal/predict"
	"saqp/internal/query"
	"saqp/internal/sched"
	"saqp/internal/selectivity"
	"saqp/internal/trace"
	"saqp/internal/workload"
)

// estimates compiles a query and estimates it at two statistics
// resolutions, like the experiment drivers do.
func estimates(t *testing.T, src string, sf float64) (truth, est *selectivity.QueryEstimate) {
	t.Helper()
	q, err := query.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
		t.Fatal(err)
	}
	d, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	var list []*dataset.Schema
	for _, s := range dataset.AllSchemas() {
		list = append(list, s)
	}
	mk := func(buckets int) *selectivity.QueryEstimate {
		cat := catalog.FromSchemas(list, sf, buckets)
		qe, err := selectivity.NewEstimator(cat, selectivity.Config{}).EstimateQuery(d)
		if err != nil {
			t.Fatal(err)
		}
		return qe
	}
	return mk(1024), mk(64)
}

func trainedTaskModel(t *testing.T) *predict.TaskModel {
	t.Helper()
	cfg := workload.DefaultCorpusConfig()
	cfg.NumQueries = 40
	c, err := workload.BuildCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := predict.FitTaskModel(c.TaskSamples)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

const sql = `SELECT c_mktsegment, sum(o_totalprice) FROM customer
	JOIN orders ON o_custkey = c_custkey WHERE o_orderdate < 9200
	GROUP BY c_mktsegment`

func TestPercolateCarriesEstimatorWRD(t *testing.T) {
	truth, est := estimates(t, sql, 5)
	tm := trainedTaskModel(t)
	cm := trace.NewDefaultCostModel(3)
	p := core.Percolate("q1", truth, est, cm, tm)

	// The scheduler-visible WRD must equal the estimator-side prediction,
	// not the oracle's.
	if math.Abs(p.PredictedWRD-tm.WRD(est))/tm.WRD(est) > 1e-9 {
		t.Fatalf("percolated WRD %v != estimator WRD %v", p.PredictedWRD, tm.WRD(est))
	}
	// And the query's task-level PredSec totals agree with it.
	var sum float64
	for _, j := range p.Query.Jobs {
		for _, task := range j.Maps {
			sum += task.PredSec
		}
		for _, task := range j.Reds {
			sum += task.PredSec
		}
	}
	if math.Abs(sum-p.PredictedWRD)/p.PredictedWRD > 0.01 {
		t.Fatalf("task predictions sum to %v, want %v", sum, p.PredictedWRD)
	}
	if math.Abs(p.Query.RemainingWRD()-p.PredictedWRD)/p.PredictedWRD > 0.01 {
		t.Fatalf("query remaining WRD %v, want %v", p.Query.RemainingWRD(), p.PredictedWRD)
	}
}

func TestPercolateTasksSizedByTruth(t *testing.T) {
	truth, est := estimates(t, sql, 5)
	tm := trainedTaskModel(t)
	cm := trace.NewDefaultCostModel(3)
	p := core.Percolate("q1", truth, est, cm, tm)
	for i, je := range truth.Jobs {
		j := p.Query.Jobs[i]
		if len(j.Maps) != je.NumMaps || len(j.Reds) != je.NumReduces {
			t.Fatalf("job %s tasks %d/%d, truth says %d/%d",
				j.JobID, len(j.Maps), len(j.Reds), je.NumMaps, je.NumReduces)
		}
	}
}

func TestPercolateWithoutModel(t *testing.T) {
	truth, est := estimates(t, sql, 2)
	cm := trace.NewDefaultCostModel(3)
	p := core.Percolate("q1", truth, est, cm, nil)
	if p.PredictedWRD != 0 {
		t.Fatalf("WRD without model = %v", p.PredictedWRD)
	}
	// The query must still be schedulable end to end.
	sim := cluster.New(cluster.DefaultConfig(), sched.SWRD{})
	sim.Submit(p.Query, 0)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Query.Done() {
		t.Fatal("query did not finish")
	}
}

func TestPercolatedQueryRunsUnderEveryPolicy(t *testing.T) {
	truth, est := estimates(t, sql, 5)
	tm := trainedTaskModel(t)
	for _, pol := range []cluster.Scheduler{sched.HCS{}, sched.HFS{}, sched.SWRD{}} {
		cm := trace.NewDefaultCostModel(3)
		p := core.Percolate("q1", truth, est, cm, tm)
		sim := cluster.New(cluster.DefaultConfig(), pol)
		sim.Submit(p.Query, 0)
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Makespan <= 0 {
			t.Fatalf("%s: empty run", pol.Name())
		}
	}
}
