package sketch

import (
	"fmt"
	"testing"
)

// The BenchmarkMicro* family is the bench-micro surface: benchstat-
// comparable names, gated in CI against testdata/bench_baseline/
// BENCH_micro.json by cmd/benchrunner -micro. Allocations are a hard
// gate (must stay at the baseline's zero); ns/op has generous headroom
// for machine variance.

var (
	benchSinkU64  uint64
	benchSinkF64  float64
	benchSinkBool bool
)

// benchHashes is a fixed pool of pre-hashed keys so the loop measures
// sketch updates, not key formatting.
func benchHashes(n int) []uint64 {
	hs := make([]uint64, n)
	for i := range hs {
		hs[i] = Hash64String(fmt.Sprintf("bench-key-%d", i))
	}
	return hs
}

func BenchmarkMicroSketchHLLAdd(b *testing.B) {
	h := NewHLL(DefaultHLLPrecision)
	hs := benchHashes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(hs[i&1023])
	}
}

func BenchmarkMicroSketchHLLEstimate(b *testing.B) {
	h := NewHLL(DefaultHLLPrecision)
	for _, x := range benchHashes(100_000) {
		h.Add(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkF64 = h.Estimate()
	}
}

func BenchmarkMicroSketchBloomAdd(b *testing.B) {
	f := NewBloom(100_000, DefaultBloomFPRate)
	hs := benchHashes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddHash(hs[i&1023])
	}
}

func BenchmarkMicroSketchBloomContains(b *testing.B) {
	f := NewBloom(100_000, DefaultBloomFPRate)
	hs := benchHashes(1024)
	for _, x := range hs[:512] {
		f.AddHash(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkBool = f.ContainsHash(hs[i&1023])
	}
}

func BenchmarkMicroSketchCMSAdd(b *testing.B) {
	c := NewCMS(DefaultCMSDepth, DefaultCMSWidth)
	hs := benchHashes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(hs[i&1023])
	}
}

func BenchmarkMicroSketchCMSCount(b *testing.B) {
	c := NewCMS(DefaultCMSDepth, DefaultCMSWidth)
	hs := benchHashes(1024)
	for _, x := range hs {
		c.Add(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkU64 = c.Count(hs[i&1023])
	}
}

func BenchmarkMicroSketchHash64(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkU64 = Hash64String(keys[i&1023])
	}
}
