package sketch

// The tier hashes with seedless FNV-1a (the project's standing choice
// for statistical identity — see catalog.Fingerprint and the shuffle
// partitioner) finished with SplitMix64 where independent derived
// hashes are needed. FNV-1a alone has weak low-bit avalanche for short
// keys; the finalizer repairs that for double hashing without a second
// pass over the input.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 returns the 64-bit FNV-1a hash of b.
//
//saqp:hotpath
func Hash64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	return h
}

// Hash64String returns the 64-bit FNV-1a hash of s without converting
// it to a byte slice.
//
//saqp:hotpath
func Hash64String(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Mix64 is the SplitMix64 finalizer: a full-avalanche bijection used to
// derive a second, independent hash from one FNV pass (double hashing
// for Bloom probes and count-min rows).
//
//saqp:hotpath
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
