package sketch

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
)

// Precision bounds for HyperLogLog. Below 4 the estimator's constants
// are undefined; above 16 the register file stops paying for itself at
// catalog scale (64 KiB per column for a 0.4% standard error).
const (
	MinHLLPrecision = 4
	MaxHLLPrecision = 16
	// DefaultHLLPrecision trades 16 KiB per column for a ~0.8% standard
	// error (1.04/sqrt(2^14)) — an order of magnitude inside the ±5%
	// accuracy gate the catalog tier is held to.
	DefaultHLLPrecision = 14
)

// HLL is a HyperLogLog distinct-count estimator with 2^p one-byte
// registers. The zero value is unusable; construct with NewHLL.
type HLL struct {
	p    uint8
	regs []uint8
}

// NewHLL returns an empty HyperLogLog with precision p (clamped to
// [MinHLLPrecision, MaxHLLPrecision]; pass DefaultHLLPrecision unless
// memory is the constraint).
func NewHLL(p int) *HLL {
	if p < MinHLLPrecision {
		p = MinHLLPrecision
	}
	if p > MaxHLLPrecision {
		p = MaxHLLPrecision
	}
	return &HLL{p: uint8(p), regs: make([]uint8, 1<<p)}
}

// Precision returns the register-index width p.
func (h *HLL) Precision() int { return int(h.p) }

// Add folds one element, pre-hashed with Hash64/Hash64String, into the
// register file. Adding the same value twice is a no-op by
// construction, which is what makes the estimator a distinct counter.
//
//saqp:hotpath
func (h *HLL) Add(hash uint64) {
	// FNV-1a's top bits move little for keys differing only in trailing
	// bytes (a byte delta spreads through one multiply, reaching only
	// ~bit 48); the register index lives in the top p bits, so finalize
	// with the SplitMix64 avalanche first. Bijective, so distinctness —
	// and determinism — are preserved.
	hash = Mix64(hash)
	idx := hash >> (64 - h.p)
	// Sentinel bit caps the rank at 64-p+1 when every payload bit is
	// zero, without a branch.
	w := hash<<h.p | 1<<(h.p-1)
	rank := uint8(bits.LeadingZeros64(w)) + 1
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// AddString hashes s and folds it in.
//
//saqp:hotpath
func (h *HLL) AddString(s string) { h.Add(Hash64String(s)) }

// Estimate returns the distinct-count estimate: the HyperLogLog
// harmonic mean with the standard small-range linear-counting
// correction. Relative error is ~1.04/sqrt(2^p) at one standard
// deviation.
//
//saqp:hotpath
func (h *HLL) Estimate() float64 {
	m := float64(len(h.regs))
	sum := 0.0
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := h.alpha() * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Small-range correction: with empty registers remaining, the
		// balls-in-bins occupancy estimate is tighter than the
		// harmonic mean.
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// alpha is the bias-correction constant of the harmonic-mean estimator.
//
//saqp:hotpath
func (h *HLL) alpha() float64 {
	m := float64(len(h.regs))
	switch len(h.regs) {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/m)
}

// Merge folds o into h register-wise (pointwise max), so h becomes the
// sketch of the concatenated streams. Precisions must match.
func (h *HLL) Merge(o *HLL) error {
	if o == nil {
		return nil
	}
	if h.p != o.p {
		return fmt.Errorf("sketch: hll merge: precision %d != %d", h.p, o.p)
	}
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	return nil
}

// hllJSON is the wire form: precision plus base64-packed registers.
type hllJSON struct {
	P    int    `json:"p"`
	Regs string `json:"regs"`
}

// MarshalJSON encodes the sketch compactly for catalog persistence.
func (h *HLL) MarshalJSON() ([]byte, error) {
	return json.Marshal(hllJSON{P: int(h.p), Regs: base64.StdEncoding.EncodeToString(h.regs)})
}

// UnmarshalJSON decodes a sketch produced by MarshalJSON.
func (h *HLL) UnmarshalJSON(data []byte) error {
	var w hllJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("sketch: hll decode: %w", err)
	}
	if w.P < MinHLLPrecision || w.P > MaxHLLPrecision {
		return fmt.Errorf("sketch: hll decode: precision %d out of range", w.P)
	}
	regs, err := base64.StdEncoding.DecodeString(w.Regs)
	if err != nil {
		return fmt.Errorf("sketch: hll decode: %w", err)
	}
	if len(regs) != 1<<w.P {
		return fmt.Errorf("sketch: hll decode: %d registers, want %d", len(regs), 1<<w.P)
	}
	h.p = uint8(w.P)
	h.regs = regs
	return nil
}
