package sketch

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
)

// DefaultBloomFPRate is the false-positive target used when callers do
// not configure one: ~10 bits and 7 probes per element.
const DefaultBloomFPRate = 0.01

// maxBloomHashes caps the probe count; beyond 16 the marginal
// false-positive improvement is below the model's noise floor.
const maxBloomHashes = 16

// Bloom is a classic Bloom filter over pre-hashed elements, probed by
// double hashing (Kirsch–Mitzenmacher: h_i = h1 + i·h2). It answers
// "definitely absent" or "probably present"; there are no false
// negatives, which is the property the shuffle's semi-join pruning
// rests on. The zero value is unusable; construct with NewBloom.
type Bloom struct {
	m     uint64 // filter size in bits
	k     int    // probes per element
	words []uint64
}

// NewBloom sizes a filter for n expected elements at false-positive
// rate fp (DefaultBloomFPRate when fp is out of (0,1)): the textbook
// m = -n·ln(fp)/ln²2 bits and k = (m/n)·ln2 probes.
func NewBloom(n int, fp float64) *Bloom {
	if n < 1 {
		n = 1
	}
	if fp <= 0 || fp >= 1 {
		fp = DefaultBloomFPRate
	}
	ln2 := math.Ln2
	m := uint64(math.Ceil(-float64(n) * math.Log(fp) / (ln2 * ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * ln2))
	if k < 1 {
		k = 1
	}
	if k > maxBloomHashes {
		k = maxBloomHashes
	}
	return &Bloom{m: m, k: k, words: make([]uint64, (m+63)/64)}
}

// Bits returns the filter size in bits.
func (b *Bloom) Bits() uint64 { return b.m }

// Hashes returns the probe count per element.
func (b *Bloom) Hashes() int { return b.k }

// AddHash inserts one pre-hashed element.
//
//saqp:hotpath
func (b *Bloom) AddHash(h uint64) {
	h2 := Mix64(h) | 1
	for i := 0; i < b.k; i++ {
		pos := (h + uint64(i)*h2) % b.m
		b.words[pos>>6] |= 1 << (pos & 63)
	}
}

// ContainsHash reports whether a pre-hashed element may have been
// added. False means definitely not; true means probably.
//
//saqp:hotpath
func (b *Bloom) ContainsHash(h uint64) bool {
	h2 := Mix64(h) | 1
	for i := 0; i < b.k; i++ {
		pos := (h + uint64(i)*h2) % b.m
		if b.words[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// AddString hashes s and inserts it.
//
//saqp:hotpath
func (b *Bloom) AddString(s string) { b.AddHash(Hash64String(s)) }

// ContainsString hashes s and probes for it.
//
//saqp:hotpath
func (b *Bloom) ContainsString(s string) bool { return b.ContainsHash(Hash64String(s)) }

// FillRatio returns the fraction of set bits.
func (b *Bloom) FillRatio() float64 {
	ones := 0
	for _, w := range b.words {
		ones += bits.OnesCount64(w)
	}
	return float64(ones) / float64(b.m)
}

// FPRate estimates the filter's current false-positive probability from
// its fill ratio: (ones/m)^k.
func (b *Bloom) FPRate() float64 { return math.Pow(b.FillRatio(), float64(b.k)) }

// Merge ORs o into b, so b becomes the filter of the concatenated
// streams. Geometries (m, k) must match.
func (b *Bloom) Merge(o *Bloom) error {
	if o == nil {
		return nil
	}
	if b.m != o.m || b.k != o.k {
		return fmt.Errorf("sketch: bloom merge: geometry (%d,%d) != (%d,%d)", b.m, b.k, o.m, o.k)
	}
	for i, w := range o.words {
		b.words[i] |= w
	}
	return nil
}

// bloomJSON is the wire form: geometry plus base64-packed words.
type bloomJSON struct {
	M     uint64 `json:"m"`
	K     int    `json:"k"`
	Words string `json:"words"`
}

// MarshalJSON encodes the filter compactly.
func (b *Bloom) MarshalJSON() ([]byte, error) {
	raw := make([]byte, 8*len(b.words))
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(raw[8*i:], w)
	}
	return json.Marshal(bloomJSON{M: b.m, K: b.k, Words: base64.StdEncoding.EncodeToString(raw)})
}

// UnmarshalJSON decodes a filter produced by MarshalJSON.
func (b *Bloom) UnmarshalJSON(data []byte) error {
	var w bloomJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("sketch: bloom decode: %w", err)
	}
	if w.M == 0 || w.K < 1 || w.K > maxBloomHashes {
		return fmt.Errorf("sketch: bloom decode: bad geometry (%d,%d)", w.M, w.K)
	}
	raw, err := base64.StdEncoding.DecodeString(w.Words)
	if err != nil {
		return fmt.Errorf("sketch: bloom decode: %w", err)
	}
	if uint64(len(raw)) != 8*((w.M+63)/64) {
		return fmt.Errorf("sketch: bloom decode: %d payload bytes for %d bits", len(raw), w.M)
	}
	words := make([]uint64, len(raw)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	b.m, b.k, b.words = w.M, w.K, words
	return nil
}
