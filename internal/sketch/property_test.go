package sketch

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// hllRelErr builds a precision-p HLL over n distinct keys drawn from
// the deterministic key space and returns the relative estimation error.
func hllRelErr(p, n int) float64 {
	h := NewHLL(p)
	for i := 0; i < n; i++ {
		h.Add(Hash64String(fmt.Sprintf("prop-key-%d", i)))
	}
	return math.Abs(h.Estimate()-float64(n)) / float64(n)
}

// TestHLLErrorBoundsSweep checks the ±5% accuracy gate deterministically
// at each decade from 10 to 10^6. The theoretical standard error at
// p=14 is ~0.8%, so 5% is >6 sigma; a failure here is a bug, not noise.
func TestHLLErrorBoundsSweep(t *testing.T) {
	for _, n := range []int{10, 100, 1_000, 10_000, 100_000, 1_000_000} {
		if err := hllRelErr(DefaultHLLPrecision, n); err > 0.05 {
			t.Errorf("n=%d: relative error %.4f exceeds 5%%", n, err)
		}
	}
}

// TestHLLErrorBoundsQuick samples random cardinalities in 10..10^6 and
// holds each to the same gate.
func TestHLLErrorBoundsQuick(t *testing.T) {
	f := func(seed uint32) bool {
		n := 10 + int(seed)%999_991
		return hllRelErr(DefaultHLLPrecision, n) <= 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestBloomFalsePositiveRate fills a filter to its design load and
// checks that the observed false-positive rate over a disjoint probe
// set is near the configured target, with zero false negatives.
func TestBloomFalsePositiveRate(t *testing.T) {
	const n, target = 10_000, 0.01
	b := NewBloom(n, target)
	for i := 0; i < n; i++ {
		b.AddString(fmt.Sprintf("in-%d", i))
	}
	for i := 0; i < n; i++ {
		if !b.ContainsString(fmt.Sprintf("in-%d", i)) {
			t.Fatalf("false negative on in-%d", i)
		}
	}
	fp := 0
	const probes = 50_000
	for i := 0; i < probes; i++ {
		if b.ContainsString(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Allow 3x the target: double hashing plus FNV on similar keys costs
	// a little versus the ideal-hash model, and the sample is finite.
	if rate > 3*target {
		t.Fatalf("false-positive rate %.4f, target %.4f", rate, target)
	}
	if est := b.FPRate(); est > 3*target {
		t.Fatalf("fill-ratio FP estimate %.4f, target %.4f", est, target)
	}
}

// TestCMSOverestimateOnlyQuick: a count-min estimate is never below the
// true count, for arbitrary key multisets.
func TestCMSOverestimateOnlyQuick(t *testing.T) {
	f := func(keys []uint16) bool {
		c := NewCMS(DefaultCMSDepth, 256)
		truth := map[uint16]uint64{}
		for _, k := range keys {
			c.AddString(fmt.Sprintf("cms-%d", k))
			truth[k]++
		}
		for k, want := range truth {
			if c.CountString(fmt.Sprintf("cms-%d", k)) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeEquivalence: for each structure, sketching two halves of a
// stream and merging equals sketching the concatenated stream, and
// merge is commutative.
func TestMergeEquivalence(t *testing.T) {
	f := func(split uint16) bool {
		const total = 4000
		cut := int(split) % total

		whole, left, right := NewHLL(12), NewHLL(12), NewHLL(12)
		bWhole, bLeft, bRight := NewBloom(total, 0.01), NewBloom(total, 0.01), NewBloom(total, 0.01)
		cWhole, cLeft, cRight := NewCMS(4, 256), NewCMS(4, 256), NewCMS(4, 256)
		for i := 0; i < total; i++ {
			h := Hash64String(fmt.Sprintf("merge-%d", i%1000))
			whole.Add(h)
			bWhole.AddHash(h)
			cWhole.Add(h)
			if i < cut {
				left.Add(h)
				bLeft.AddHash(h)
				cLeft.Add(h)
			} else {
				right.Add(h)
				bRight.AddHash(h)
				cRight.Add(h)
			}
		}

		lr, rl := NewHLL(12), NewHLL(12)
		if lr.Merge(left) != nil || lr.Merge(right) != nil ||
			rl.Merge(right) != nil || rl.Merge(left) != nil {
			return false
		}
		if lr.Estimate() != whole.Estimate() || rl.Estimate() != whole.Estimate() {
			return false
		}

		blr := NewBloom(total, 0.01)
		if blr.Merge(bLeft) != nil || blr.Merge(bRight) != nil {
			return false
		}
		brl := NewBloom(total, 0.01)
		if brl.Merge(bRight) != nil || brl.Merge(bLeft) != nil {
			return false
		}

		clr := NewCMS(4, 256)
		if clr.Merge(cLeft) != nil || clr.Merge(cRight) != nil {
			return false
		}
		crl := NewCMS(4, 256)
		if crl.Merge(cRight) != nil || crl.Merge(cLeft) != nil {
			return false
		}
		for i := 0; i < 1000; i++ {
			h := Hash64String(fmt.Sprintf("merge-%d", i))
			if !blr.ContainsHash(h) || !brl.ContainsHash(h) || !bWhole.ContainsHash(h) {
				return false
			}
			if clr.Count(h) != cWhole.Count(h) || crl.Count(h) != cWhole.Count(h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
