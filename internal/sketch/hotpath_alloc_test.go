package sketch

import "testing"

// Sinks defeat dead-code elimination inside AllocsPerRun closures.
var (
	hotSinkU64  uint64
	hotSinkF64  float64
	hotSinkBool bool
)

// TestHotPathAllocs is the runtime half of the //saqp:hotpath contract
// for the sketch tier: the per-tuple query path — hashing, Add,
// Estimate, Contains, Count — performs zero heap allocations per call.
// Constructors and Merge are deliberately outside the guard.
func TestHotPathAllocs(t *testing.T) {
	h := NewHLL(DefaultHLLPrecision)
	b := NewBloom(10_000, DefaultBloomFPRate)
	c := NewCMS(DefaultCMSDepth, DefaultCMSWidth)
	key := []byte("l_orderkey:424242")
	skey := "l_orderkey:424242"
	b.AddString(skey)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Hash64", func() { hotSinkU64 = Hash64(key) }},
		{"Hash64String", func() { hotSinkU64 = Hash64String(skey) }},
		{"Mix64", func() { hotSinkU64 = Mix64(hotSinkU64) }},
		{"HLL.Add", func() { h.Add(hotSinkU64) }},
		{"HLL.AddString", func() { h.AddString(skey) }},
		{"HLL.Estimate", func() { hotSinkF64 = h.Estimate() }},
		{"Bloom.AddHash", func() { b.AddHash(hotSinkU64) }},
		{"Bloom.AddString", func() { b.AddString(skey) }},
		{"Bloom.ContainsHash", func() { hotSinkBool = b.ContainsHash(hotSinkU64) }},
		{"Bloom.ContainsString", func() { hotSinkBool = b.ContainsString(skey) }},
		{"CMS.Add", func() { c.Add(hotSinkU64) }},
		{"CMS.AddN", func() { c.AddN(hotSinkU64, 3) }},
		{"CMS.AddString", func() { c.AddString(skey) }},
		{"CMS.Count", func() { hotSinkU64 = c.Count(42) }},
		{"CMS.CountString", func() { hotSinkU64 = c.CountString(skey) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("%s allocates %.0f times per call; //saqp:hotpath functions must not allocate", tc.name, n)
		}
	}
}
