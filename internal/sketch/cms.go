package sketch

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// Default count-min geometry: four rows of 1024 counters (32 KiB) keep
// the expected overestimate under e/1024 ≈ 0.27% of the stream length
// with failure probability e^-4, at catalog-collection scale.
const (
	DefaultCMSDepth = 4
	DefaultCMSWidth = 1024
)

// CMS is a count-min sketch over pre-hashed elements: depth rows of
// width counters, each element bumping one counter per row, the point
// query taking the minimum. Estimates never undercount. Width must be a
// power of two so the row index is a mask, not a division. The zero
// value is unusable; construct with NewCMS.
type CMS struct {
	depth int
	width uint64
	cells []uint64 // depth*width, row-major
}

// NewCMS returns an empty count-min sketch. depth is clamped to [1, 16]
// and width is rounded up to a power of two (minimum 16).
func NewCMS(depth, width int) *CMS {
	if depth < 1 {
		depth = 1
	}
	if depth > 16 {
		depth = 16
	}
	w := uint64(16)
	for w < uint64(width) {
		w <<= 1
	}
	return &CMS{depth: depth, width: w, cells: make([]uint64, uint64(depth)*w)}
}

// Depth returns the row count.
func (c *CMS) Depth() int { return c.depth }

// Width returns the per-row counter count.
func (c *CMS) Width() int { return int(c.width) }

// Add counts one occurrence of a pre-hashed element.
//
//saqp:hotpath
func (c *CMS) Add(h uint64) { c.AddN(h, 1) }

// AddN counts n occurrences of a pre-hashed element.
//
//saqp:hotpath
func (c *CMS) AddN(h, n uint64) {
	g := Mix64(h) | 1
	mask := c.width - 1
	for i := 0; i < c.depth; i++ {
		pos := uint64(i)*c.width + ((h + uint64(i)*g) & mask)
		c.cells[pos] += n
	}
}

// Count returns the estimated occurrence count of a pre-hashed element:
// exact count plus a non-negative collision overestimate.
//
//saqp:hotpath
func (c *CMS) Count(h uint64) uint64 {
	g := Mix64(h) | 1
	mask := c.width - 1
	min := ^uint64(0)
	for i := 0; i < c.depth; i++ {
		v := c.cells[uint64(i)*c.width+((h+uint64(i)*g)&mask)]
		if v < min {
			min = v
		}
	}
	return min
}

// AddString counts one occurrence of s.
//
//saqp:hotpath
func (c *CMS) AddString(s string) { c.AddN(Hash64String(s), 1) }

// CountString returns the estimated occurrence count of s.
//
//saqp:hotpath
func (c *CMS) CountString(s string) uint64 { return c.Count(Hash64String(s)) }

// Merge adds o's counters into c, so c becomes the sketch of the
// concatenated streams. Geometries must match.
func (c *CMS) Merge(o *CMS) error {
	if o == nil {
		return nil
	}
	if c.depth != o.depth || c.width != o.width {
		return fmt.Errorf("sketch: cms merge: geometry %dx%d != %dx%d", c.depth, c.width, o.depth, o.width)
	}
	for i, v := range o.cells {
		c.cells[i] += v
	}
	return nil
}

// cmsJSON is the wire form: geometry plus base64-packed counters.
type cmsJSON struct {
	Depth int    `json:"depth"`
	Width int    `json:"width"`
	Cells string `json:"cells"`
}

// MarshalJSON encodes the sketch compactly.
func (c *CMS) MarshalJSON() ([]byte, error) {
	raw := make([]byte, 8*len(c.cells))
	for i, v := range c.cells {
		binary.LittleEndian.PutUint64(raw[8*i:], v)
	}
	return json.Marshal(cmsJSON{Depth: c.depth, Width: int(c.width), Cells: base64.StdEncoding.EncodeToString(raw)})
}

// UnmarshalJSON decodes a sketch produced by MarshalJSON.
func (c *CMS) UnmarshalJSON(data []byte) error {
	var w cmsJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("sketch: cms decode: %w", err)
	}
	if w.Depth < 1 || w.Depth > 16 || w.Width < 16 || w.Width&(w.Width-1) != 0 {
		return fmt.Errorf("sketch: cms decode: bad geometry %dx%d", w.Depth, w.Width)
	}
	raw, err := base64.StdEncoding.DecodeString(w.Cells)
	if err != nil {
		return fmt.Errorf("sketch: cms decode: %w", err)
	}
	if len(raw) != 8*w.Depth*w.Width {
		return fmt.Errorf("sketch: cms decode: %d payload bytes for %dx%d", len(raw), w.Depth, w.Width)
	}
	cells := make([]uint64, len(raw)/8)
	for i := range cells {
		cells[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	c.depth, c.width, c.cells = w.Depth, uint64(w.Width), cells
	return nil
}
