package sketch

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64([]byte("lineitem")) != Hash64String("lineitem") {
		t.Fatal("Hash64 and Hash64String disagree on identical input")
	}
	// Seedless FNV-1a is a stable contract: the catalog persists sketch
	// state, so the hash of a fixed string must never change.
	const want = uint64(0xa430d84680aabd0b)
	if got := Hash64String("hello"); got != want {
		t.Fatalf("Hash64String(hello) = %#x, want %#x", got, want)
	}
	if Mix64(1) == Mix64(2) {
		t.Fatal("Mix64 collides on trivially distinct inputs")
	}
}

func TestHLLExactSmallRange(t *testing.T) {
	h := NewHLL(DefaultHLLPrecision)
	for i := 0; i < 100; i++ {
		h.AddString(fmt.Sprintf("key-%d", i))
	}
	// Duplicates must not move the estimate.
	before := h.Estimate()
	for i := 0; i < 100; i++ {
		h.AddString(fmt.Sprintf("key-%d", i))
	}
	if after := h.Estimate(); after != before {
		t.Fatalf("duplicate adds moved estimate %v -> %v", before, after)
	}
	// Linear counting makes the small range essentially exact.
	if math.Abs(before-100) > 2 {
		t.Fatalf("estimate %v for 100 distinct, want within ±2", before)
	}
}

func TestHLLPrecisionClamp(t *testing.T) {
	if p := NewHLL(0).Precision(); p != MinHLLPrecision {
		t.Fatalf("precision clamped to %d, want %d", p, MinHLLPrecision)
	}
	if p := NewHLL(99).Precision(); p != MaxHLLPrecision {
		t.Fatalf("precision clamped to %d, want %d", p, MaxHLLPrecision)
	}
}

func TestHLLMergeMismatch(t *testing.T) {
	if err := NewHLL(10).Merge(NewHLL(12)); err == nil {
		t.Fatal("merge across precisions succeeded")
	}
	if err := NewHLL(10).Merge(nil); err != nil {
		t.Fatalf("merge with nil: %v", err)
	}
}

func TestHLLJSONRoundTrip(t *testing.T) {
	h := NewHLL(10)
	for i := 0; i < 5000; i++ {
		h.AddString(fmt.Sprintf("k%d", i))
	}
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back HLL
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != h.Estimate() {
		t.Fatalf("round trip changed estimate %v -> %v", h.Estimate(), back.Estimate())
	}
	for _, bad := range []string{
		`{"p":2,"regs":""}`,
		`{"p":10,"regs":"AAAA"}`,
		`{"p":10,"regs":"!!!"}`,
	} {
		var h2 HLL
		if err := json.Unmarshal([]byte(bad), &h2); err == nil {
			t.Fatalf("decoded invalid payload %s", bad)
		}
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		b.AddString(fmt.Sprintf("member-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !b.ContainsString(fmt.Sprintf("member-%d", i)) {
			t.Fatalf("false negative on member-%d", i)
		}
	}
}

func TestBloomGeometry(t *testing.T) {
	b := NewBloom(1000, 0.01)
	// Textbook sizing: ~9.6 bits and ~7 probes per element at 1%.
	if b.Bits() < 9000 || b.Bits() > 10500 {
		t.Fatalf("bits = %d, want ~9600", b.Bits())
	}
	if b.Hashes() < 6 || b.Hashes() > 8 {
		t.Fatalf("hashes = %d, want ~7", b.Hashes())
	}
	// Degenerate inputs fall back to defaults rather than panicking.
	if d := NewBloom(0, -1); d.Bits() < 64 || d.Hashes() < 1 {
		t.Fatalf("degenerate constructor produced %d bits, %d hashes", d.Bits(), d.Hashes())
	}
}

func TestBloomMergeMismatch(t *testing.T) {
	if err := NewBloom(100, 0.01).Merge(NewBloom(5000, 0.01)); err == nil {
		t.Fatal("merge across geometries succeeded")
	}
	if err := NewBloom(100, 0.01).Merge(nil); err != nil {
		t.Fatalf("merge with nil: %v", err)
	}
}

func TestBloomJSONRoundTrip(t *testing.T) {
	b := NewBloom(500, 0.02)
	for i := 0; i < 500; i++ {
		b.AddString(fmt.Sprintf("k%d", i))
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back Bloom
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if !back.ContainsString(fmt.Sprintf("k%d", i)) {
			t.Fatalf("round trip lost member k%d", i)
		}
	}
	for _, bad := range []string{
		`{"m":0,"k":1,"words":""}`,
		`{"m":64,"k":99,"words":"AAAAAAAAAAA="}`,
		`{"m":128,"k":3,"words":"AAAAAAAAAAA="}`,
	} {
		var b2 Bloom
		if err := json.Unmarshal([]byte(bad), &b2); err == nil {
			t.Fatalf("decoded invalid payload %s", bad)
		}
	}
}

func TestCMSExactWhenSparse(t *testing.T) {
	c := NewCMS(DefaultCMSDepth, DefaultCMSWidth)
	for i := 0; i < 50; i++ {
		for j := 0; j <= i; j++ {
			c.AddString(fmt.Sprintf("item-%d", i))
		}
	}
	// 50 keys in 4x1024 counters: collisions are possible but the
	// estimate can never undercount.
	for i := 0; i < 50; i++ {
		got := c.CountString(fmt.Sprintf("item-%d", i))
		if got < uint64(i+1) {
			t.Fatalf("item-%d counted %d, true count %d (undercount)", i, got, i+1)
		}
	}
	if c.CountString("item-0") != 1 {
		t.Fatalf("item-0 counted %d with a near-empty sketch, want 1", c.CountString("item-0"))
	}
}

func TestCMSGeometry(t *testing.T) {
	c := NewCMS(0, 1000)
	if c.Depth() != 1 {
		t.Fatalf("depth clamped to %d, want 1", c.Depth())
	}
	if c.Width() != 1024 {
		t.Fatalf("width rounded to %d, want 1024", c.Width())
	}
}

func TestCMSMergeMismatch(t *testing.T) {
	if err := NewCMS(4, 1024).Merge(NewCMS(4, 2048)); err == nil {
		t.Fatal("merge across geometries succeeded")
	}
	if err := NewCMS(4, 1024).Merge(nil); err != nil {
		t.Fatalf("merge with nil: %v", err)
	}
}

func TestCMSJSONRoundTrip(t *testing.T) {
	c := NewCMS(4, 256)
	for i := 0; i < 300; i++ {
		c.AddN(Hash64String(fmt.Sprintf("k%d", i)), uint64(i))
	}
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back CMS
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		h := Hash64String(fmt.Sprintf("k%d", i))
		if back.Count(h) != c.Count(h) {
			t.Fatalf("round trip changed count for k%d", i)
		}
	}
	for _, bad := range []string{
		`{"depth":0,"width":1024,"cells":""}`,
		`{"depth":4,"width":1000,"cells":""}`,
		`{"depth":1,"width":16,"cells":"AAAA"}`,
	} {
		var c2 CMS
		if err := json.Unmarshal([]byte(bad), &c2); err == nil {
			t.Fatalf("decoded invalid payload %s", bad)
		}
	}
}
