// Package sketch is the probabilistic statistics tier: HyperLogLog
// distinct-count estimation, Bloom filters for join-key membership, and
// a count-min sketch for heavy-hitter frequencies.
//
// The package exists because cardinality is the highest-variance input
// to the paper's execution-time model: Eq. 5/6 join selectivity and the
// Eq. 2 group-by combine both lean on per-column distinct counts, and
// deriving those exactly costs a hash-map insert per tuple. A sketch
// answers the same questions in fixed memory with a bounded,
// testable error — the trade the catalog's sketch tier and the shuffle's
// semi-join pruning are built on.
//
// Three contracts hold everywhere:
//
//   - Deterministic: hashing is seedless FNV-1a plus a SplitMix64
//     finalizer; the same stream always produces byte-identical sketch
//     state, so the package sits in analysis.DeterministicPackages.
//   - Allocation-free at query time: Add, Estimate, Contains and Count
//     carry //saqp:hotpath and are guarded by TestHotPathAllocs;
//     constructors and Merge may allocate, the per-tuple path may not.
//   - Mergeable: sketches built over stream partitions merge into the
//     sketch of the concatenated stream (the map-side-combine shape),
//     property-tested for all three structures.
package sketch
