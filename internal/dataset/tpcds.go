package dataset

// A TPC-DS-flavoured star schema: two fact tables (store_sales, web_sales)
// with Zipf-skewed item keys and clustered date keys, plus the dimension
// tables they reference. The paper trains its models on a mix of TPC-H and
// TPC-DS queries; these tables give the workload generator a second schema
// family with different shapes (star joins, heavier skew, wider dimension
// fan-out) so the trained coefficients are not specific to TPC-H.

// Item returns the TPC-DS item dimension schema.
func Item() *Schema {
	return &Schema{
		Name:   "item",
		RowsAt: scaled(18_000),
		Columns: []Column{
			{Name: "i_item_sk", Kind: KindInt, Card: scaled(18_000), Dist: DistSequential},
			{Name: "i_item_id", Kind: KindString, Width: 16, Card: scaled(18_000), Dist: DistSequential},
			{Name: "i_brand", Kind: KindString, Width: 20, Card: fixed(700), Dist: DistUniform},
			{Name: "i_category", Kind: KindString, Width: 12, Card: fixed(10), Dist: DistUniform},
			{Name: "i_class", Kind: KindString, Width: 12, Card: fixed(100), Dist: DistUniform},
			{Name: "i_current_price", Kind: KindFloat, Card: fixed(10_000), Lo: 1, Dist: DistUniform},
		},
	}
}

// DateDim returns the TPC-DS date dimension schema (fixed size).
func DateDim() *Schema {
	return &Schema{
		Name:   "date_dim",
		RowsAt: fixed(73_049),
		Columns: []Column{
			{Name: "d_date_sk", Kind: KindInt, Card: fixed(73_049), Dist: DistSequential},
			{Name: "d_year", Kind: KindInt, Card: fixed(200), Lo: 1900, Dist: DistClustered},
			{Name: "d_moy", Kind: KindInt, Card: fixed(12), Lo: 1, Dist: DistUniform},
			{Name: "d_dom", Kind: KindInt, Card: fixed(31), Lo: 1, Dist: DistUniform},
			{Name: "d_day_name", Kind: KindString, Width: 9, Card: fixed(7), Dist: DistUniform},
		},
	}
}

// Store returns the TPC-DS store dimension schema.
func Store() *Schema {
	return &Schema{
		Name:   "store",
		RowsAt: scaled(120),
		Columns: []Column{
			{Name: "st_store_sk", Kind: KindInt, Card: scaled(120), Dist: DistSequential},
			{Name: "st_state", Kind: KindString, Width: 2, Card: fixed(9), Dist: DistUniform},
			{Name: "st_market_id", Kind: KindInt, Card: fixed(10), Lo: 1, Dist: DistUniform},
		},
	}
}

// StoreSales returns the TPC-DS store_sales fact table schema. Item keys
// are Zipf-skewed — best-sellers dominate — which makes the equi-width
// histogram join estimator (Eq. 5) diverge visibly from the naive uniform
// formula the paper improves upon.
func StoreSales() *Schema {
	return &Schema{
		Name:   "store_sales",
		RowsAt: scaled(2_880_000),
		Columns: []Column{
			{Name: "ss_item_sk", Kind: KindInt, Card: scaled(18_000), Dist: DistZipf, Skew: 1.1, Ref: "item.i_item_sk"},
			{Name: "ss_store_sk", Kind: KindInt, Card: scaled(120), Dist: DistUniform, Ref: "store.st_store_sk"},
			{Name: "ss_sold_date_sk", Kind: KindInt, Card: fixed(1_823), Dist: DistClustered, Ref: "date_dim.d_date_sk"},
			{Name: "ss_quantity", Kind: KindInt, Card: fixed(100), Lo: 1, Dist: DistUniform},
			{Name: "ss_sales_price", Kind: KindFloat, Card: fixed(20_000), Dist: DistUniform},
			{Name: "ss_net_profit", Kind: KindFloat, Card: fixed(40_000), Lo: -10_000, Dist: DistUniform},
		},
	}
}

// WebSales returns the TPC-DS web_sales fact table schema, smaller and more
// skewed than store_sales (best-sellers dominate web orders).
func WebSales() *Schema {
	return &Schema{
		Name:   "web_sales",
		RowsAt: scaled(720_000),
		Columns: []Column{
			{Name: "ws_item_sk", Kind: KindInt, Card: scaled(18_000), Dist: DistZipf, Skew: 1.18, Ref: "item.i_item_sk"},
			{Name: "ws_sold_date_sk", Kind: KindInt, Card: fixed(1_823), Dist: DistClustered, Ref: "date_dim.d_date_sk"},
			{Name: "ws_quantity", Kind: KindInt, Card: fixed(100), Lo: 1, Dist: DistUniform},
			{Name: "ws_sales_price", Kind: KindFloat, Card: fixed(20_000), Dist: DistUniform},
			{Name: "ws_ship_cost", Kind: KindFloat, Card: fixed(10_000), Dist: DistUniform},
		},
	}
}

// TPCDS returns the TPC-DS-flavoured schemas.
func TPCDS() []*Schema {
	return []*Schema{Item(), DateDim(), Store(), StoreSales(), WebSales()}
}

// AllSchemas returns every schema this package defines, keyed by table name.
func AllSchemas() map[string]*Schema {
	m := make(map[string]*Schema)
	for _, s := range TPCH() {
		m[s.Name] = s
	}
	for _, s := range TPCDS() {
		m[s.Name] = s
	}
	return m
}
