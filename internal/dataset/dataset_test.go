package dataset

import (
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Supplier(), 0.01, 7)
	b := Generate(Supplier(), 0.01, 7)
	if a.NumRows() != b.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", a.NumRows(), b.NumRows())
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !a.Rows[i][j].Equal(b.Rows[i][j]) {
				t.Fatalf("row %d col %d differ: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

func TestGenerateSeedSensitive(t *testing.T) {
	a := Generate(Supplier(), 0.01, 1)
	b := Generate(Supplier(), 0.01, 2)
	diff := false
	for i := range a.Rows {
		// s_nationkey (index 2) is random; sequential cols will match.
		if !a.Rows[i][2].Equal(b.Rows[i][2]) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical random columns")
	}
}

func TestRowCountsMatchSchema(t *testing.T) {
	for _, s := range TPCH() {
		rel := Generate(s, 0.001, 3)
		if rel.NumRows() != s.RowsAt(0.001) {
			t.Fatalf("%s: got %d rows, schema says %d", s.Name, rel.NumRows(), s.RowsAt(0.001))
		}
	}
}

func TestFixedTablesIgnoreScale(t *testing.T) {
	if Nation().RowsAt(100) != 25 || Region().RowsAt(100) != 5 {
		t.Fatal("fixed tables scaled with sf")
	}
	if DateDim().RowsAt(50) != 73_049 {
		t.Fatal("date_dim scaled with sf")
	}
}

func TestScaledMonotone(t *testing.T) {
	li := LineItem()
	if li.RowsAt(1) != 6_000_000 {
		t.Fatalf("lineitem at sf=1: %d", li.RowsAt(1))
	}
	if li.RowsAt(0.5) >= li.RowsAt(1) {
		t.Fatal("RowsAt not monotone in sf")
	}
	if li.RowsAt(1e-9) < 1 {
		t.Fatal("RowsAt dropped below 1 row")
	}
}

func TestCardinalityRespected(t *testing.T) {
	rel := Generate(LineItem(), 0.002, 11)
	idx := rel.Schema.ColumnIndex("l_quantity")
	distinct := map[string]bool{}
	for _, row := range rel.Rows {
		distinct[row[idx].Key()] = true
	}
	if len(distinct) > 50 {
		t.Fatalf("l_quantity has %d distinct values, cap is 50", len(distinct))
	}
	if len(distinct) < 40 {
		t.Fatalf("l_quantity has only %d distinct values at %d rows", len(distinct), rel.NumRows())
	}
}

func TestDomainBounds(t *testing.T) {
	rel := Generate(LineItem(), 0.002, 13)
	qidx := rel.Schema.ColumnIndex("l_quantity")
	didx := rel.Schema.ColumnIndex("l_shipdate")
	for _, row := range rel.Rows {
		q := row[qidx].I
		if q < 1 || q > 50 {
			t.Fatalf("l_quantity %d out of [1,50]", q)
		}
		d := row[didx].I
		if d < dateEpochDays || d >= dateEpochDays+2_526 {
			t.Fatalf("l_shipdate %d out of domain", d)
		}
	}
}

func TestReferentialIntegrity(t *testing.T) {
	// FK values of lineitem.l_orderkey must all exist in orders.o_orderkey
	// at the same scale factor.
	const sf = 0.002
	orders := Generate(Orders(), sf, 5)
	li := Generate(LineItem(), sf, 5)
	pk := map[int64]bool{}
	oidx := orders.Schema.ColumnIndex("o_orderkey")
	for _, row := range orders.Rows {
		pk[row[oidx].I] = true
	}
	lidx := li.Schema.ColumnIndex("l_orderkey")
	for _, row := range li.Rows {
		if !pk[row[lidx].I] {
			t.Fatalf("dangling FK l_orderkey=%d", row[lidx].I)
		}
	}
}

func TestClusteredColumnIsClustered(t *testing.T) {
	rel := Generate(LineItem(), 0.002, 9)
	idx := rel.Schema.ColumnIndex("l_orderkey")
	adjacent := 0
	for i := 1; i < len(rel.Rows); i++ {
		if rel.Rows[i][idx].I == rel.Rows[i-1][idx].I {
			adjacent++
		}
	}
	if adjacent < len(rel.Rows)/4 {
		t.Fatalf("l_orderkey shows only %d adjacent-equal pairs over %d rows", adjacent, len(rel.Rows))
	}
}

func TestStringWidths(t *testing.T) {
	rel := Generate(Customer(), 0.005, 21)
	idx := rel.Schema.ColumnIndex("c_mktsegment")
	for _, row := range rel.Rows {
		if len(row[idx].S) != 10 {
			t.Fatalf("c_mktsegment width %d, want 10", len(row[idx].S))
		}
	}
}

func TestAvgTupleWidth(t *testing.T) {
	s := Nation()
	// 8 (key) + 12 (name) + 8 (regionkey) + 70 (comment)
	if w := s.AvgTupleWidth(); w != 98 {
		t.Fatalf("nation avg tuple width = %d, want 98", w)
	}
	rel := Generate(s, 1, 2)
	avg := float64(rel.Bytes()) / float64(rel.NumRows())
	if avg != 98 {
		t.Fatalf("materialised avg width = %v, want 98", avg)
	}
}

func TestBytesAtScalesLinearly(t *testing.T) {
	li := LineItem()
	if li.BytesAt(2) != 2*li.BytesAt(1) {
		t.Fatalf("BytesAt not linear: %d vs %d", li.BytesAt(2), 2*li.BytesAt(1))
	}
}

func TestSchemaLookup(t *testing.T) {
	s := Orders()
	if s.Column("o_orderdate") == nil {
		t.Fatal("Column lookup failed")
	}
	if s.Column("nope") != nil {
		t.Fatal("Column lookup returned ghost column")
	}
	if s.ColumnIndex("o_custkey") != 1 {
		t.Fatalf("ColumnIndex(o_custkey) = %d", s.ColumnIndex("o_custkey"))
	}
	if s.ColumnIndex("nope") != -1 {
		t.Fatal("ColumnIndex for missing column should be -1")
	}
}

func TestAllSchemasComplete(t *testing.T) {
	m := AllSchemas()
	for _, name := range []string{"region", "nation", "supplier", "customer",
		"part", "partsupp", "orders", "lineitem",
		"item", "date_dim", "store", "store_sales", "web_sales"} {
		if m[name] == nil {
			t.Fatalf("missing schema %q", name)
		}
	}
	if len(m) != 13 {
		t.Fatalf("AllSchemas has %d entries, want 13", len(m))
	}
}

func TestValueOps(t *testing.T) {
	if !Int(3).Less(Int(4)) || Int(4).Less(Int(3)) {
		t.Fatal("Int Less broken")
	}
	if !Str("a").Less(Str("b")) {
		t.Fatal("Str Less broken")
	}
	if !Float(1.5).Equal(Float(1.5)) || Float(1.5).Equal(Float(2)) {
		t.Fatal("Float Equal broken")
	}
	if Int(1).Equal(Float(1)) {
		t.Fatal("cross-kind Equal should be false")
	}
	if Int(1).Width() != 8 || Str("abc").Width() != 3 {
		t.Fatal("Width broken")
	}
	r := Row{Int(1), Str("xy")}
	if r.Width() != 10 {
		t.Fatalf("Row width = %d, want 10", r.Width())
	}
	c := r.Clone()
	c[0] = Int(9)
	if r[0].I != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestValueKeyUniqueProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return (a == b) == (Int(a).Key() == Int(b).Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDomainValueRoundTrip(t *testing.T) {
	c := LineItem().Column("l_quantity")
	v := DomainValue(c, 10)
	if v.I != 11 { // Lo=1 + k=10
		t.Fatalf("DomainValue = %v, want 11", v.I)
	}
}

func TestMakeStringTruncates(t *testing.T) {
	s := makeString("very_long_column_name", 123456789, 8)
	if len(s) != 8 {
		t.Fatalf("truncated string has width %d", len(s))
	}
}

func TestMakeStringInjective(t *testing.T) {
	// The key->string mapping must stay injective at every width the
	// schemas use, up to each width's representable cardinality.
	for _, width := range []int{1, 2, 7, 10, 12, 20} {
		limit := int64(2000)
		seen := map[string]int64{}
		for k := int64(0); k < limit; k++ {
			if width == 1 && k >= 36 {
				break
			}
			if width == 2 && k >= 36*36 {
				break
			}
			s := makeString("l_shipmode", k, width)
			if len(s) != width {
				t.Fatalf("width %d: len(%q) = %d", width, s, len(s))
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("width %d: keys %d and %d collide on %q", width, prev, k, s)
			}
			seen[s] = k
		}
	}
}

func TestLowWidthStringColumnsDistinct(t *testing.T) {
	// Regression: l_returnflag (width 1, card 3) must have 3 values, not 1.
	rel := Generate(LineItem(), 0.002, 31)
	idx := rel.Schema.ColumnIndex("l_returnflag")
	seen := map[string]bool{}
	for _, r := range rel.Rows {
		seen[r[idx].S] = true
	}
	if len(seen) != 3 {
		t.Fatalf("l_returnflag distinct = %d, want 3", len(seen))
	}
	mi := rel.Schema.ColumnIndex("l_shipmode")
	seenM := map[string]bool{}
	for _, r := range rel.Rows {
		seenM[r[mi].S] = true
	}
	if len(seenM) != 7 {
		t.Fatalf("l_shipmode distinct = %d, want 7", len(seenM))
	}
}
