// Package dataset defines relational schemas and deterministic synthetic
// data generators modelled on the TPC-H and TPC-DS benchmarks used by the
// paper's evaluation (Section 5.1). Real benchmark kits and hundreds of
// gigabytes of data are unavailable in this environment, so the package
// reproduces what the paper's techniques actually consume:
//
//   - per-table row counts as a function of scale factor,
//   - per-column distinct cardinalities, widths and value distributions
//     (uniform, Zipf-skewed, clustered, sequential),
//   - primary-key/foreign-key referential integrity, and
//   - laptop-scale materialised relations for ground-truth execution in
//     the in-memory MapReduce engine.
package dataset
