package dataset

import (
	"hash/fnv"
	"strconv"
	"strings"

	"saqp/internal/sim"
)

// Generate materialises a relation for the given schema at scale factor sf,
// deterministically from seed. Two calls with identical arguments produce
// identical relations. Column streams are seeded independently (by table
// and column name), so adding a column never perturbs the others.
//
// Materialisation is intended for laptop-scale factors (sf <= ~0.1); large
// experiment scales are handled analytically via Schema.RowsAt/BytesAt and
// the catalog statistics, mirroring how the paper's estimator never scans
// full tables at run time.
func Generate(s *Schema, sf float64, seed uint64) *Relation {
	n := int(s.RowsAt(sf))
	rel := &Relation{Schema: s, Rows: make([]Row, n)}
	cols := make([][]Value, len(s.Columns))
	for ci := range s.Columns {
		cols[ci] = generateColumn(&s.Columns[ci], n, sf, columnSeed(seed, s.Name, s.Columns[ci].Name))
	}
	for i := 0; i < n; i++ {
		row := make(Row, len(s.Columns))
		for ci := range cols {
			row[ci] = cols[ci][i]
		}
		rel.Rows[i] = row
	}
	return rel
}

// columnSeed derives a per-column seed from the master seed and names.
func columnSeed(seed uint64, table, column string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(table))
	h.Write([]byte{'.'})
	h.Write([]byte(column))
	return seed ^ h.Sum64()
}

// generateColumn produces n values for one column.
func generateColumn(c *Column, n int, sf float64, seed uint64) []Value {
	rng := sim.New(seed)
	card := c.Card(sf)
	if card < 1 {
		card = 1
	}
	keys := make([]int64, n)
	switch c.Dist {
	case DistSequential:
		for i := range keys {
			keys[i] = int64(i) % card
		}
	case DistUniform:
		for i := range keys {
			keys[i] = rng.Int63n(card)
		}
	case DistZipf:
		skew := c.Skew
		if skew <= 1 {
			skew = 1.2
		}
		z := sim.NewZipf(rng, skew, 1, uint64(card))
		for i := range keys {
			keys[i] = int64(z.Uint64())
		}
	case DistClustered:
		copy(keys, sim.ClusteredKeys(rng, n, card))
	}
	vals := make([]Value, n)
	for i, k := range keys {
		vals[i] = materialize(c, k)
	}
	return vals
}

// materialize turns an integer domain key into a concrete column value.
func materialize(c *Column, k int64) Value {
	switch c.Kind {
	case KindInt:
		return Int(c.Lo + k)
	case KindDate:
		return Date(c.Lo + k)
	case KindFloat:
		return Float(float64(c.Lo) + float64(k)*0.01)
	case KindString:
		return Str(makeString(c.Name, k, c.AvgWidth()))
	}
	return Value{}
}

// makeString builds a deterministic string of exactly width bytes encoding
// domain key k. The mapping is injective for any width w as long as the
// column's cardinality stays within 36^w, so distinct counts hold by
// construction:
//
//   - narrow columns get the base-36 key alone (right-truncated to the
//     low-order digits, which are unique within the domain);
//   - wider columns get "<prefix>#<digits>" padded with '~' — a character
//     outside both the prefix alphabet and base-36 — so the key decodes
//     unambiguously regardless of prefix truncation.
func makeString(prefix string, k int64, width int) string {
	digits := strconv.FormatInt(k, 36)
	if len(digits) >= width {
		return digits[len(digits)-width:]
	}
	maxPrefix := width - len(digits) - 1
	p := prefix
	if len(p) > maxPrefix {
		p = p[:maxPrefix]
	}
	var b strings.Builder
	b.Grow(width)
	b.WriteString(p)
	b.WriteByte('#')
	b.WriteString(digits)
	for b.Len() < width {
		b.WriteByte('~')
	}
	return b.String()
}

// DomainValue returns the concrete value for domain key k of column c —
// the inverse mapping used by query generators to build predicates with a
// known target selectivity (e.g. "l_quantity < v" covering 30% of the
// domain).
func DomainValue(c *Column, k int64) Value { return materialize(c, k) }
