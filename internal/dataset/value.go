package dataset

import (
	"fmt"
	"strconv"
)

// Kind enumerates column value types.
type Kind uint8

const (
	// KindInt is a 64-bit integer column.
	KindInt Kind = iota
	// KindFloat is a 64-bit floating point column.
	KindFloat
	// KindString is a variable-width string column.
	KindString
	// KindDate is a date column stored as days since epoch.
	KindDate
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a single column value. Exactly one payload field is meaningful,
// selected by K. Values are compact enough to store millions per relation.
type Value struct {
	K Kind
	I int64 // payload for KindInt and KindDate
	F float64
	S string
}

// Int wraps an int64 as a Value.
func Int(v int64) Value { return Value{K: KindInt, I: v} }

// Float wraps a float64 as a Value.
func Float(v float64) Value { return Value{K: KindFloat, F: v} }

// Str wraps a string as a Value.
func Str(v string) Value { return Value{K: KindString, S: v} }

// Date wraps days-since-epoch as a Value.
func Date(days int64) Value { return Value{K: KindDate, I: days} }

// Key returns a comparable representation used for grouping and joining.
// Two Values compare equal under Key iff they are the same logical value.
func (v Value) Key() string {
	switch v.K {
	case KindInt, KindDate:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	}
	return ""
}

// Num returns the value as a float64 for numeric comparison. Strings map to
// 0; predicates on strings should use equality on S instead. Num, Less,
// Equal and Width run once per row inside the simulated map/reduce inner
// loops, so they must not allocate (Key, which builds a string, is
// deliberately outside the contract).
//
//saqp:hotpath
func (v Value) Num() float64 {
	switch v.K {
	case KindInt, KindDate:
		return float64(v.I)
	case KindFloat:
		return v.F
	}
	return 0
}

// Less reports whether v orders before o. Values of different kinds order
// by kind, matching the engine's total order for sorting.
//
//saqp:hotpath
func (v Value) Less(o Value) bool {
	if v.K != o.K {
		return v.K < o.K
	}
	switch v.K {
	case KindInt, KindDate:
		return v.I < o.I
	case KindFloat:
		return v.F < o.F
	case KindString:
		return v.S < o.S
	}
	return false
}

// Equal reports whether v and o are the same logical value.
//
//saqp:hotpath
func (v Value) Equal(o Value) bool {
	if v.K != o.K {
		return false
	}
	switch v.K {
	case KindInt, KindDate:
		return v.I == o.I
	case KindFloat:
		return v.F == o.F
	case KindString:
		return v.S == o.S
	}
	return false
}

// Width returns the encoded width of the value in bytes, the unit used for
// all D_in/D_med/D_out size accounting in the paper's model.
//
//saqp:hotpath
func (v Value) Width() int {
	switch v.K {
	case KindInt, KindDate:
		return 8
	case KindFloat:
		return 8
	case KindString:
		return len(v.S)
	}
	return 0
}

// String renders the value for display.
func (v Value) String() string { return v.Key() }

// Row is a tuple of column values.
type Row []Value

// Width returns the encoded width of the whole tuple in bytes.
func (r Row) Width() int {
	w := 0
	for _, v := range r {
		w += v.Width()
	}
	return w
}

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}
