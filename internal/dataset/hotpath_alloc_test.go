package dataset

import "testing"

var (
	hotSinkFloat float64
	hotSinkBool  bool
	hotSinkInt   int
)

// TestHotPathAllocs is the runtime half of the //saqp:hotpath contract
// for per-row Value operations: zero heap allocations per call.
func TestHotPathAllocs(t *testing.T) {
	iv, fv, sv := Int(7), Float(3.5), Str("abc")
	cases := []struct {
		name string
		fn   func()
	}{
		{"Num/int", func() { hotSinkFloat = iv.Num() }},
		{"Num/float", func() { hotSinkFloat = fv.Num() }},
		{"Less", func() { hotSinkBool = iv.Less(fv) }},
		{"Less/string", func() { hotSinkBool = sv.Less(sv) }},
		{"Equal", func() { hotSinkBool = fv.Equal(fv) }},
		{"Width", func() { hotSinkInt = sv.Width() }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s allocates %.0f times per call; //saqp:hotpath functions must not allocate", c.name, n)
		}
	}
}
