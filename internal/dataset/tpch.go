package dataset

// The TPC-H schema, sized per the official specification: at scale factor
// sf the row counts are SF-proportional except the fixed nation and region
// tables. Column cardinalities and distributions follow the spec closely
// enough to exercise every selectivity case in the paper's Section 3:
// clustered keys (lineitem.l_orderkey), uniform FKs per the spec, and
// PK–FK referential integrity (skewed FKs live in the TPC-DS tables)
// for the natural-join chain of Eq. 6.

func fixed(n int64) func(float64) int64 {
	return func(float64) int64 { return n }
}

func scaled(n int64) func(float64) int64 {
	return func(sf float64) int64 {
		v := int64(float64(n)*sf + 0.5)
		if v < 1 {
			return 1
		}
		return v
	}
}

// dateEpochDays is Jan 1 1992 in days-since-1970, the start of the TPC-H
// date domain.
const dateEpochDays = 8036

// Region returns the TPC-H region table schema.
func Region() *Schema {
	return &Schema{
		Name:   "region",
		RowsAt: fixed(5),
		Columns: []Column{
			{Name: "r_regionkey", Kind: KindInt, Card: fixed(5), Dist: DistSequential},
			{Name: "r_name", Kind: KindString, Width: 12, Card: fixed(5), Dist: DistUniform},
			{Name: "r_comment", Kind: KindString, Width: 60, Card: fixed(5), Dist: DistUniform},
		},
	}
}

// Nation returns the TPC-H nation table schema.
func Nation() *Schema {
	return &Schema{
		Name:   "nation",
		RowsAt: fixed(25),
		Columns: []Column{
			{Name: "n_nationkey", Kind: KindInt, Card: fixed(25), Dist: DistSequential},
			{Name: "n_name", Kind: KindString, Width: 12, Card: fixed(25), Dist: DistSequential},
			{Name: "n_regionkey", Kind: KindInt, Card: fixed(5), Dist: DistUniform, Ref: "region.r_regionkey"},
			{Name: "n_comment", Kind: KindString, Width: 70, Card: fixed(25), Dist: DistUniform},
		},
	}
}

// Supplier returns the TPC-H supplier table schema.
func Supplier() *Schema {
	return &Schema{
		Name:   "supplier",
		RowsAt: scaled(10_000),
		Columns: []Column{
			{Name: "s_suppkey", Kind: KindInt, Card: scaled(10_000), Dist: DistSequential},
			{Name: "s_name", Kind: KindString, Width: 18, Card: scaled(10_000), Dist: DistSequential},
			{Name: "s_nationkey", Kind: KindInt, Card: fixed(25), Dist: DistUniform, Ref: "nation.n_nationkey"},
			{Name: "s_acctbal", Kind: KindFloat, Card: fixed(1_100_000), Lo: -1000, Dist: DistUniform},
			{Name: "s_comment", Kind: KindString, Width: 60, Card: scaled(10_000), Dist: DistUniform},
		},
	}
}

// Customer returns the TPC-H customer table schema.
func Customer() *Schema {
	return &Schema{
		Name:   "customer",
		RowsAt: scaled(150_000),
		Columns: []Column{
			{Name: "c_custkey", Kind: KindInt, Card: scaled(150_000), Dist: DistSequential},
			{Name: "c_name", Kind: KindString, Width: 18, Card: scaled(150_000), Dist: DistSequential},
			{Name: "c_nationkey", Kind: KindInt, Card: fixed(25), Dist: DistUniform, Ref: "nation.n_nationkey"},
			{Name: "c_acctbal", Kind: KindFloat, Card: fixed(1_100_000), Lo: -1000, Dist: DistUniform},
			{Name: "c_mktsegment", Kind: KindString, Width: 10, Card: fixed(5), Dist: DistUniform},
			{Name: "c_comment", Kind: KindString, Width: 70, Card: scaled(150_000), Dist: DistUniform},
		},
	}
}

// Part returns the TPC-H part table schema.
func Part() *Schema {
	return &Schema{
		Name:   "part",
		RowsAt: scaled(200_000),
		Columns: []Column{
			{Name: "p_partkey", Kind: KindInt, Card: scaled(200_000), Dist: DistSequential},
			{Name: "p_name", Kind: KindString, Width: 32, Card: scaled(200_000), Dist: DistSequential},
			{Name: "p_brand", Kind: KindString, Width: 10, Card: fixed(25), Dist: DistUniform},
			{Name: "p_type", Kind: KindString, Width: 20, Card: fixed(150), Dist: DistUniform},
			{Name: "p_size", Kind: KindInt, Card: fixed(50), Lo: 1, Dist: DistUniform},
			{Name: "p_container", Kind: KindString, Width: 10, Card: fixed(40), Dist: DistUniform},
			{Name: "p_retailprice", Kind: KindFloat, Card: fixed(110_000), Lo: 900, Dist: DistUniform},
		},
	}
}

// PartSupp returns the TPC-H partsupp table schema.
func PartSupp() *Schema {
	return &Schema{
		Name:   "partsupp",
		RowsAt: scaled(800_000),
		Columns: []Column{
			{Name: "ps_partkey", Kind: KindInt, Card: scaled(200_000), Dist: DistClustered, Ref: "part.p_partkey"},
			{Name: "ps_suppkey", Kind: KindInt, Card: scaled(10_000), Dist: DistUniform, Ref: "supplier.s_suppkey"},
			{Name: "ps_availqty", Kind: KindInt, Card: fixed(9_999), Lo: 1, Dist: DistUniform},
			{Name: "ps_supplycost", Kind: KindFloat, Card: fixed(100_000), Lo: 1, Dist: DistUniform},
			{Name: "ps_comment", Kind: KindString, Width: 120, Card: scaled(800_000), Dist: DistUniform},
		},
	}
}

// Orders returns the TPC-H orders table schema.
func Orders() *Schema {
	return &Schema{
		Name:   "orders",
		RowsAt: scaled(1_500_000),
		Columns: []Column{
			{Name: "o_orderkey", Kind: KindInt, Card: scaled(1_500_000), Dist: DistSequential},
			{Name: "o_custkey", Kind: KindInt, Card: scaled(150_000), Dist: DistUniform, Ref: "customer.c_custkey"},
			{Name: "o_orderstatus", Kind: KindString, Width: 1, Card: fixed(3), Dist: DistUniform},
			{Name: "o_totalprice", Kind: KindFloat, Card: fixed(1_500_000), Lo: 800, Dist: DistUniform},
			{Name: "o_orderdate", Kind: KindDate, Card: fixed(2_406), Lo: dateEpochDays, Dist: DistUniform},
			{Name: "o_orderpriority", Kind: KindString, Width: 12, Card: fixed(5), Dist: DistUniform},
			{Name: "o_shippriority", Kind: KindInt, Card: fixed(1), Dist: DistUniform},
			{Name: "o_comment", Kind: KindString, Width: 48, Card: scaled(1_500_000), Dist: DistUniform},
		},
	}
}

// LineItem returns the TPC-H lineitem table schema. l_orderkey is clustered:
// the line items of one order are physically adjacent, exactly the layout
// that makes the paper's clustered-combine selectivity (Eq. 2, first case)
// apply.
func LineItem() *Schema {
	return &Schema{
		Name:   "lineitem",
		RowsAt: scaled(6_000_000),
		Columns: []Column{
			{Name: "l_orderkey", Kind: KindInt, Card: scaled(1_500_000), Dist: DistClustered, Ref: "orders.o_orderkey"},
			{Name: "l_partkey", Kind: KindInt, Card: scaled(200_000), Dist: DistUniform, Ref: "part.p_partkey"},
			{Name: "l_suppkey", Kind: KindInt, Card: scaled(10_000), Dist: DistUniform, Ref: "supplier.s_suppkey"},
			{Name: "l_quantity", Kind: KindInt, Card: fixed(50), Lo: 1, Dist: DistUniform},
			{Name: "l_extendedprice", Kind: KindFloat, Card: fixed(1_000_000), Lo: 900, Dist: DistUniform},
			{Name: "l_discount", Kind: KindFloat, Card: fixed(11), Dist: DistUniform},
			{Name: "l_tax", Kind: KindFloat, Card: fixed(9), Dist: DistUniform},
			{Name: "l_returnflag", Kind: KindString, Width: 1, Card: fixed(3), Dist: DistUniform},
			{Name: "l_linestatus", Kind: KindString, Width: 1, Card: fixed(2), Dist: DistUniform},
			{Name: "l_shipdate", Kind: KindDate, Card: fixed(2_526), Lo: dateEpochDays, Dist: DistUniform},
			{Name: "l_commitdate", Kind: KindDate, Card: fixed(2_466), Lo: dateEpochDays + 30, Dist: DistUniform},
			{Name: "l_receiptdate", Kind: KindDate, Card: fixed(2_554), Lo: dateEpochDays + 1, Dist: DistUniform},
			{Name: "l_shipmode", Kind: KindString, Width: 7, Card: fixed(7), Dist: DistUniform},
			{Name: "l_comment", Kind: KindString, Width: 26, Card: scaled(6_000_000), Dist: DistUniform},
		},
	}
}

// TPCH returns the eight TPC-H table schemas.
func TPCH() []*Schema {
	return []*Schema{
		Region(), Nation(), Supplier(), Customer(),
		Part(), PartSupp(), Orders(), LineItem(),
	}
}
