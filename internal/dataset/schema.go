package dataset

import "fmt"

// Dist enumerates the value distributions a generated column can follow.
type Dist uint8

const (
	// DistSequential assigns 0,1,2,... — primary keys.
	DistSequential Dist = iota
	// DistUniform draws uniformly from the column's domain.
	DistUniform
	// DistZipf draws with Zipf skew (hot keys), exponent Column.Skew.
	DistZipf
	// DistClustered draws uniformly but physically clusters equal values in
	// runs — the "clustered group-by keys" case of the paper's Eq. 2.
	DistClustered
)

// String returns the lowercase name of the distribution.
func (d Dist) String() string {
	switch d {
	case DistSequential:
		return "sequential"
	case DistUniform:
		return "uniform"
	case DistZipf:
		return "zipf"
	case DistClustered:
		return "clustered"
	}
	return fmt.Sprintf("dist(%d)", uint8(d))
}

// Column describes one attribute of a synthetic table.
type Column struct {
	// Name is the column name, unique within the table.
	Name string
	// Kind is the value type.
	Kind Kind
	// Width is the average encoded width in bytes (strings are generated to
	// average this width; fixed types ignore it and use 8).
	Width int
	// Card returns the number of distinct values at scale factor sf.
	// For FK columns it must equal the referenced table's key cardinality.
	Card func(sf float64) int64
	// Dist is the value distribution.
	Dist Dist
	// Skew is the Zipf exponent when Dist == DistZipf (must be > 1).
	Skew float64
	// Lo is the smallest domain value (ints/dates); domain is [Lo, Lo+Card).
	Lo int64
	// Ref names "table.column" when this column is a foreign key; used by
	// referential-integrity checks and natural-join selectivity (Eq. 6).
	Ref string
}

// AvgWidth returns the column's average encoded width in bytes.
func (c *Column) AvgWidth() int {
	switch c.Kind {
	case KindString:
		if c.Width > 0 {
			return c.Width
		}
		return 16
	default:
		return 8
	}
}

// Schema describes one synthetic table.
type Schema struct {
	// Name is the table name.
	Name string
	// Columns are the table's attributes in order.
	Columns []Column
	// RowsAt returns the table's row count at scale factor sf.
	RowsAt func(sf float64) int64
}

// Column returns the column with the given name, or nil.
func (s *Schema) Column(name string) *Column {
	for i := range s.Columns {
		if s.Columns[i].Name == name {
			return &s.Columns[i]
		}
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i := range s.Columns {
		if s.Columns[i].Name == name {
			return i
		}
	}
	return -1
}

// AvgTupleWidth returns the average encoded row width in bytes — the
// denominator of the paper's projection selectivity S_proj.
func (s *Schema) AvgTupleWidth() int {
	w := 0
	for i := range s.Columns {
		w += s.Columns[i].AvgWidth()
	}
	return w
}

// BytesAt returns the table's total size in bytes at scale factor sf.
func (s *Schema) BytesAt(sf float64) int64 {
	return s.RowsAt(sf) * int64(s.AvgTupleWidth())
}

// Relation is a materialised table: a schema plus generated rows.
type Relation struct {
	Schema *Schema
	Rows   []Row
}

// Bytes returns the total encoded size of the materialised rows.
func (r *Relation) Bytes() int64 {
	var total int64
	for _, row := range r.Rows {
		total += int64(row.Width())
	}
	return total
}

// NumRows returns the number of materialised rows.
func (r *Relation) NumRows() int64 { return int64(len(r.Rows)) }
