package saqp

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"saqp/internal/net"
	"saqp/internal/net/proto"
)

// Network-frontend re-exports, so callers stay on the facade.
type (
	// NetServer is the TCP query frontend; see Framework.NewNetServer.
	NetServer = net.Server
	// NetClient is the blocking wire client; see DialNet.
	NetClient = net.Client
	// NetServerError is a typed error frame from a NetServer.
	NetServerError = net.ServerError
)

// NetOptions configures a NetServer over an existing Server.
type NetOptions struct {
	// Addr is the TCP listen address (host:port; ":0" picks a free
	// port).
	Addr string
	// MaxConns bounds concurrently served connections (0 means the
	// package default).
	MaxConns int
	// MaxPending bounds one connection's submitted-but-unwaited
	// tickets (0 means the package default).
	MaxPending int
	// IdleTimeout disconnects a client silent for this long (0 means
	// the package default).
	IdleTimeout time.Duration
	// WriteTimeout bounds flushing one reply (0 means the package
	// default).
	WriteTimeout time.Duration
	// BusyQueueDepth, when positive, refuses SUBMIT with -BUSY while
	// the admission queue is at or past this depth.
	BusyQueueDepth int
}

// netBackend adapts the facade Server to the frontend's Backend seam.
type netBackend struct{ s *Server }

// Submit admits one query through the facade server.
func (b netBackend) Submit(ctx context.Context, sql string, seed uint64) (net.Pending, error) {
	t, err := b.s.Submit(ctx, sql, seed)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Stats snapshots the facade server's counters.
func (b netBackend) Stats() ServeStats { return b.s.Stats() }

// NewNetServer starts the TCP query frontend over srv: a RESP-style
// protocol speaking SUBMIT / WAIT / STATS / EXPLAIN / METRICS / PING /
// QUIT (see internal/net). EXPLAIN compiles and estimates against this
// framework; METRICS dumps the framework's observer registry. The
// frontend drains via NetServer.Shutdown — close srv only after that
// returns, so in-flight queries keep their engine.
func (f *Framework) NewNetServer(srv *Server, opts NetOptions) (*NetServer, error) {
	return net.Start(net.Config{
		Addr:           opts.Addr,
		Backend:        netBackend{s: srv},
		MaxConns:       opts.MaxConns,
		MaxPending:     opts.MaxPending,
		IdleTimeout:    opts.IdleTimeout,
		WriteTimeout:   opts.WriteTimeout,
		BusyQueueDepth: opts.BusyQueueDepth,
		Limits:         proto.DefaultLimits(),
		Explain:        f.explainLines,
		MetricsText:    f.metricsText,
		Observer:       f.Obs,
	})
}

// DialNet connects a wire client to a NetServer at addr.
func DialNet(addr string) (*NetClient, error) { return net.Dial(addr) }

// IsNetBusy reports whether err is a NetServer's typed -BUSY
// backpressure refusal.
func IsNetBusy(err error) bool { return net.IsBusy(err) }

// explainLines serves the wire EXPLAIN command: compile + estimate,
// one line per job, with predicted time and WRD when models are
// trained. Floats use fixed precision so repeated EXPLAINs are
// byte-stable.
func (f *Framework) explainLines(sql string) ([]string, error) {
	d, err := f.Compile(sql)
	if err != nil {
		return nil, err
	}
	qe, err := f.Estimate(d)
	if err != nil {
		return nil, err
	}
	lines := make([]string, 0, len(qe.Jobs)+2)
	lines = append(lines, fmt.Sprintf("plan: %d jobs, est input %.0f bytes, stats=%s",
		len(qe.Jobs), qe.TotalInputBytes(), qe.StatsTier))
	for _, je := range qe.Jobs {
		lines = append(lines, fmt.Sprintf(
			"%s %s: maps=%d reduces=%d d_in=%.0f d_med=%.0f d_out=%.0f is=%.3f fs=%.3f p=%.3f",
			je.Job.ID, je.Job.Type, je.NumMaps, je.NumReduces,
			je.InBytes, je.MedBytes, je.OutBytes, je.IS, je.FS, je.P))
	}
	if pred, err := f.PredictQuerySeconds(qe); err == nil {
		if wrd, err := f.WRD(qe); err == nil {
			lines = append(lines, fmt.Sprintf("predicted_sec=%.3f wrd=%.3f", pred, wrd))
		}
	}
	return lines, nil
}

// metricsText serves the wire METRICS command with the observer
// registry in Prometheus text exposition format.
func (f *Framework) metricsText() ([]byte, error) {
	if f.Obs == nil || f.Obs.Metrics == nil {
		return []byte("# no observer attached"), nil
	}
	var buf bytes.Buffer
	if err := f.Obs.Metrics.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
