package saqp

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"saqp/internal/net/proto"
)

// netTranscriptDir holds the checked-in golden wire transcripts: one
// file per session, alternating `C: ` request lines (sent verbatim plus
// CRLF) and `S: ` reply lines (the server's exact frame bytes, split on
// CRLF). Because every reply field uses fixed-precision formatting and
// the engine is fully deterministic for a fixed submission order, the
// transcripts are byte-stable across runs — any diff is a wire-format
// or model change. Regenerate deliberately with:
//
//	SAQP_UPDATE_GOLDEN=1 go test -run TestGoldenNetTranscripts .
const netTranscriptDir = "testdata"

// netTranscriptScript is one golden session: the transcript file it
// pins and the inline commands the test replays to produce it.
type netTranscriptScript struct {
	file string
	cmds []string
}

// netTranscriptScripts builds the replayed sessions. SQL is collapsed
// to one line because the inline request form is CRLF-terminated; the
// inline form carries no seed argument, so every SUBMIT here runs with
// seed 0 and repeated SUBMITs of the same query are true cache hits.
func netTranscriptScripts(t *testing.T) []netTranscriptScript {
	t.Helper()
	sql := func(name string) string {
		s, err := TPCHSQL(name)
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(strings.Fields(s), " ")
	}
	return []netTranscriptScript{
		{
			// The paper's Figures 1-2 "QA" query end to end: submit,
			// collect the full result frame, snapshot engine counters.
			file: "net_transcript_q14.txt",
			cmds: []string{
				"PING",
				"SUBMIT " + sql("q14"),
				"WAIT q000001",
				"STATS",
				"QUIT",
			},
		},
		{
			// Result-cache behavior on the wire: the second q6 SUBMIT
			// (same SQL, same implicit seed) must come back as a cache
			// hit, visible in both the WAIT frame and STATS.
			file: "net_transcript_cache.txt",
			cmds: []string{
				"SUBMIT " + sql("q6"),
				"WAIT q000001",
				"SUBMIT " + sql("q6"),
				"WAIT q000002",
				"SUBMIT " + sql("q1"),
				"WAIT q000003",
				"STATS",
				"QUIT",
			},
		},
		{
			// Introspection plus the error surface: EXPLAIN's per-job
			// plan lines, METRICS without an observer, and the exact
			// -ERR frames for a bad query, a bad verb, and an unknown
			// ticket.
			file: "net_transcript_explain.txt",
			cmds: []string{
				"EXPLAIN " + sql("q1"),
				"METRICS",
				"EXPLAIN SELECT FROM nowhere",
				"WAIT q999999",
				"FROB",
				"QUIT",
			},
		},
	}
}

// TestGoldenNetTranscripts replays each scripted session against a
// live NetServer on loopback and compares the full conversation —
// request and reply bytes — against the checked-in transcript.
func TestGoldenNetTranscripts(t *testing.T) {
	fw, err := NewFramework(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.TrainDefault(); err != nil {
		t.Fatal(err)
	}

	for _, sc := range netTranscriptScripts(t) {
		t.Run(sc.file, func(t *testing.T) {
			got := replayNetTranscript(t, fw, sc)
			path := filepath.Join(netTranscriptDir, sc.file)
			if os.Getenv("SAQP_UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll(netTranscriptDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden transcript (run with SAQP_UPDATE_GOLDEN=1 to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("wire transcript drifted from %s:\n%s\nregenerate deliberately with SAQP_UPDATE_GOLDEN=1 if the protocol change is intended",
					path, transcriptDiff(string(want), got))
			}
		})
	}
}

// replayNetTranscript runs one scripted session against a fresh
// single-worker server (so ticket ids and counters are deterministic)
// and renders the conversation in the transcript format.
func replayNetTranscript(t *testing.T, fw *Framework, sc netTranscriptScript) string {
	t.Helper()
	srv, err := fw.NewServer(ServerOptions{Workers: 1, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ns, err := fw.NewNetServer(srv, NetOptions{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	conn, err := net.DialTimeout("tcp", ns.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
		t.Fatal(err)
	}

	// Every byte the server sends is teed into reply; the session is
	// strict request/reply lockstep, so between commands the socket is
	// quiet and each captured span is exactly one reply frame.
	var reply bytes.Buffer
	br := bufio.NewReaderSize(io.TeeReader(conn, &reply), 1<<16)
	lim := proto.DefaultLimits()

	var out strings.Builder
	fmt.Fprintf(&out, "# Golden wire transcript %s — do not edit by hand.\n", sc.file)
	out.WriteString("# Regenerate: SAQP_UPDATE_GOLDEN=1 go test -run TestGoldenNetTranscripts .\n")
	for _, cmd := range sc.cmds {
		if _, err := io.WriteString(conn, cmd+"\r\n"); err != nil {
			t.Fatalf("writing %q: %v", cmd, err)
		}
		reply.Reset()
		if _, err := proto.ReadValue(br, lim); err != nil {
			t.Fatalf("reading reply to %q: %v", cmd, err)
		}
		out.WriteString("C: " + cmd + "\n")
		frame := reply.String()
		if !strings.HasSuffix(frame, "\r\n") {
			t.Fatalf("reply to %q does not end in CRLF: %q", cmd, frame)
		}
		for _, line := range strings.Split(strings.TrimSuffix(frame, "\r\n"), "\r\n") {
			out.WriteString("S: " + line + "\n")
		}
	}
	return out.String()
}

// transcriptDiff renders the first point where two transcripts
// disagree, with one line of context either side.
func transcriptDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, w, g)
		}
	}
	return "transcripts differ only in length"
}
