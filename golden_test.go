package saqp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"saqp/internal/core"
)

// goldenQuery is one TPC-H query's checked-in prediction snapshot.
type goldenQuery struct {
	Name         string  `json:"name"`
	Jobs         int     `json:"jobs"`
	WRD          float64 `json:"wrd_seconds"`
	PredictedSec float64 `json:"predicted_seconds"`
}

const goldenPath = "testdata/golden_tpch.json"

// goldenEps absorbs float noise that is not a model change — e.g. FMA
// contraction differences across architectures — while still catching
// any real drift in the estimate or the fitted coefficients.
const goldenEps = 1e-6

// TestGoldenTPCHPredictions is the end-to-end regression gate: compile →
// estimate → train → predict over the full TPC-H corpus, compared
// against a checked-in snapshot of each query's WRD (Eq. 10) and
// predicted standalone response time. Training is fully deterministic
// (seeded corpus, least-squares fit), so any diff is a behavior change —
// regenerate deliberately with:
//
//	SAQP_UPDATE_GOLDEN=1 go test -run TestGoldenTPCHPredictions .
func TestGoldenTPCHPredictions(t *testing.T) {
	fw, err := NewFramework(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.TrainDefault(); err != nil {
		t.Fatal(err)
	}

	names := TPCHNames()
	got := make([]goldenQuery, 0, len(names))
	for _, name := range names {
		sql, err := TPCHSQL(name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := fw.Compile(sql)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		qe, err := fw.Estimate(d)
		if err != nil {
			t.Fatalf("%s: estimate: %v", name, err)
		}
		wrd, err := fw.WRD(qe)
		if err != nil {
			t.Fatalf("%s: wrd: %v", name, err)
		}
		pred, err := fw.PredictQuerySeconds(qe)
		if err != nil {
			t.Fatalf("%s: predict: %v", name, err)
		}
		got = append(got, goldenQuery{Name: name, Jobs: len(qe.Jobs), WRD: wrd, PredictedSec: pred})
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Name < got[j].Name })

	if os.Getenv("SAQP_UPDATE_GOLDEN") != "" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d queries)", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden snapshot (regenerate with SAQP_UPDATE_GOLDEN=1): %v", err)
	}
	var want []goldenQuery
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("golden snapshot corrupt: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden snapshot has %d queries, corpus has %d — regenerate with SAQP_UPDATE_GOLDEN=1",
			len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		if g.Name != w.Name {
			t.Errorf("query %d: name %q, golden %q", i, g.Name, w.Name)
			continue
		}
		if g.Jobs != w.Jobs {
			t.Errorf("%s: plan has %d jobs, golden %d", g.Name, g.Jobs, w.Jobs)
		}
		if !core.ApproxEqual(g.WRD, w.WRD, goldenEps) {
			t.Errorf("%s: WRD %.9g, golden %.9g", g.Name, g.WRD, w.WRD)
		}
		if !core.ApproxEqual(g.PredictedSec, w.PredictedSec, goldenEps) {
			t.Errorf("%s: predicted %.9g s, golden %.9g s", g.Name, g.PredictedSec, w.PredictedSec)
		}
	}
}
