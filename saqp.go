package saqp

import (
	"fmt"
	"io"

	"saqp/internal/catalog"
	"saqp/internal/cluster"
	"saqp/internal/dataset"
	"saqp/internal/mapreduce"
	"saqp/internal/obs"
	"saqp/internal/plan"
	"saqp/internal/predict"
	"saqp/internal/query"
	"saqp/internal/sched"
	"saqp/internal/selectivity"
	"saqp/internal/trace"
	"saqp/internal/workload"
)

// Re-exported core types. Aliases let callers outside this module use the
// full APIs of the internal subsystems through this package.
type (
	// Query is a parsed, resolvable analytic query AST.
	Query = query.Query
	// DAG is a compiled execution plan: MapReduce jobs plus dependencies.
	DAG = plan.DAG
	// Job is one MapReduce job in a plan.
	Job = plan.Job
	// QueryEstimate carries per-job selectivity and resource estimates.
	QueryEstimate = selectivity.QueryEstimate
	// JobEstimate is one job's estimated data flow (D_in, D_med, D_out...).
	JobEstimate = selectivity.JobEstimate
	// Catalog holds offline table statistics.
	Catalog = catalog.Catalog
	// JobModel is the fitted Eq. 8 job-time model.
	JobModel = predict.JobModel
	// TaskModel is the fitted Eq. 9 task-time model (and WRD provider).
	TaskModel = predict.TaskModel
	// Corpus is a training/evaluation query corpus.
	Corpus = workload.Corpus
	// Workload is a Table 2-style query mix with Poisson arrivals.
	Workload = workload.Workload
	// Engine is the in-memory MapReduce execution engine.
	Engine = mapreduce.Engine
	// ClusterConfig sizes the discrete-event cluster simulator.
	ClusterConfig = cluster.Config
	// Schema describes one synthetic table.
	Schema = dataset.Schema
	// GroupAccuracy is one row of the paper's accuracy tables.
	GroupAccuracy = predict.GroupAccuracy
	// Observer is the deterministic observability hub: metrics registry,
	// sim-time trace sink and prediction-drift recorder.
	Observer = obs.Observer
	// TraceSink writes Chrome trace-event JSON (loadable in Perfetto).
	TraceSink = obs.TraceSink
	// MetricsRegistry collects counters, gauges and histograms.
	MetricsRegistry = obs.Registry
	// RegistrySnapshot is a point-in-time metrics dump.
	RegistrySnapshot = obs.RegistrySnapshot
	// DriftRecorder accumulates predicted-vs-observed error per category.
	DriftRecorder = obs.DriftRecorder
	// DriftSnapshot is the recorder's rolled-up accuracy state.
	DriftSnapshot = obs.DriftSnapshot
	// DriftSummary is one category's accuracy roll-up.
	DriftSummary = obs.DriftSummary
	// Span is one node of a request-scoped trace tree.
	Span = obs.Span
	// SpanTree is one served submission's complete span record.
	SpanTree = obs.SpanTree
	// SpanStore retains finished span trees in a bounded ring.
	SpanStore = obs.SpanStore
	// SLOConfig parameterises a latency objective with multi-window
	// burn-rate alerting (zero fields take the obs defaults).
	SLOConfig = obs.SLOConfig
	// SLOTracker evaluates a latency objective over virtual time.
	SLOTracker = obs.SLOTracker
	// SLOSnapshot is a tracker's JSON state, including the alert log.
	SLOSnapshot = obs.SLOSnapshot
	// SLOAlert is one deterministic fire/resolve alert-log entry.
	SLOAlert = obs.SLOAlert
)

// NewObserver builds an observer with a fresh metrics registry and drift
// recorder; trace may be nil to disable tracing.
func NewObserver(trace *TraceSink) *Observer { return obs.New(trace) }

// NewTraceSink wraps w in a Chrome trace-event sink. Call Close to
// terminate the JSON array once the run finishes.
func NewTraceSink(w io.Writer) *TraceSink { return obs.NewTraceSink(w) }

// Scheduler name constants for experiment entry points.
const (
	SchedulerHCS  = "HCS"
	SchedulerHFS  = "HFS"
	SchedulerSWRD = "SWRD"
)

// Options configures a Framework.
type Options struct {
	// ScaleFactor sizes the synthetic TPC-H/TPC-DS database the catalog
	// describes (1.0 ≈ 1 GB of TPC-H). Default 1.
	ScaleFactor float64
	// HistogramBuckets is the offline statistics resolution. Default 64.
	HistogramBuckets int
	// Sizing overrides MapReduce task sizing (block size, bytes/reducer).
	Sizing selectivity.Config
	// Observer receives framework metrics and, through SimulateQuery,
	// cluster traces and prediction drift. Nil disables observability at
	// zero cost.
	Observer *Observer
}

// Framework bundles the paper's three techniques behind one object:
// cross-layer semantics percolation (Compile keeps operators, predicates
// and dependencies attached to the DAG), selectivity estimation (Estimate),
// and multivariate time prediction (Train*/Predict*/WRD).
type Framework struct {
	Schemas   map[string]*dataset.Schema
	Catalog   *catalog.Catalog
	Estimator *selectivity.Estimator

	JobTime  *predict.JobModel
	TaskTime *predict.TaskModel

	// Obs, when non-nil, counts facade operations and instruments
	// SimulateQuery runs. Set from Options.Observer.
	Obs *Observer

	opts Options
}

// count bumps a framework counter when an observer is attached.
func (f *Framework) count(name string) {
	if f.Obs != nil && f.Obs.Metrics != nil {
		f.Obs.Metrics.Counter(name).Inc()
	}
}

// NewFramework builds a framework over analytically-derived statistics for
// the synthetic TPC-H/TPC-DS schemas at the configured scale factor.
func NewFramework(opts Options) (*Framework, error) {
	if opts.ScaleFactor <= 0 {
		opts.ScaleFactor = 1
	}
	if opts.HistogramBuckets <= 0 {
		opts.HistogramBuckets = catalog.DefaultBuckets
	}
	schemas := dataset.AllSchemas()
	var list []*dataset.Schema
	for _, s := range schemas {
		list = append(list, s)
	}
	cat := catalog.FromSchemas(list, opts.ScaleFactor, opts.HistogramBuckets)
	return &Framework{
		Schemas:   schemas,
		Catalog:   cat,
		Estimator: selectivity.NewEstimator(cat, opts.Sizing),
		Obs:       opts.Observer,
		opts:      opts,
	}, nil
}

// NewFrameworkFromCatalog builds a framework over caller-provided
// statistics (e.g. collected by scanning materialised relations).
func NewFrameworkFromCatalog(cat *catalog.Catalog, opts Options) *Framework {
	return &Framework{
		Schemas:   dataset.AllSchemas(),
		Catalog:   cat,
		Estimator: selectivity.NewEstimator(cat, opts.Sizing),
		Obs:       opts.Observer,
		opts:      opts,
	}
}

// Compile parses HiveQL text, resolves it against the schemas, and compiles
// it to a DAG of MapReduce jobs. The DAG retains the query semantics —
// operators, predicates, join keys, projected columns — which is the
// "cross-layer semantics percolation" of paper Section 2.2.
func (f *Framework) Compile(sql string) (*DAG, error) {
	f.count(obs.MCompiles)
	q, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	if err := query.Resolve(q, f.Schemas); err != nil {
		return nil, err
	}
	return plan.Compile(q)
}

// Estimate runs semantics-aware selectivity estimation over a compiled DAG
// (paper Section 3): per-job IS/FS, D_in/D_med/D_out, task counts, and the
// join balance ratio P.
func (f *Framework) Estimate(d *DAG) (*QueryEstimate, error) {
	f.count(obs.MEstimates)
	qe, err := f.Estimator.EstimateQuery(d)
	if err == nil && qe.StatsTier == selectivity.StatsSketch {
		f.count(obs.MSketchEstimates)
	}
	return qe, err
}

// statsFingerprint extends the catalog fingerprint with the estimator's
// statistics tier: exact-mode and sketch-mode servers price the same
// plan differently, so they must never share cached estimates.
func (f *Framework) statsFingerprint() string {
	return f.Catalog.Fingerprint() + "/" + string(f.Estimator.Stats())
}

// Train fits the Eq. 8 job model and Eq. 9 task models from a corpus.
func (f *Framework) Train(c *Corpus) error {
	f.count(obs.MTrainings)
	jm, err := predict.FitJobModel(c.JobSamples)
	if err != nil {
		return fmt.Errorf("saqp: training job model: %w", err)
	}
	tm, err := predict.FitTaskModel(c.TaskSamples)
	if err != nil {
		return fmt.Errorf("saqp: training task model: %w", err)
	}
	f.JobTime, f.TaskTime = jm, tm
	return nil
}

// TrainDefault builds a modest synthetic corpus (TPC-H/DS queries, 1–100 GB
// inputs, simulated execution) and trains the models on it. For the paper's
// full 1,000-query corpus use workload.BuildCorpus + Train.
func (f *Framework) TrainDefault() error {
	cfg := workload.DefaultCorpusConfig()
	cfg.NumQueries = 200
	c, err := workload.BuildCorpus(cfg)
	if err != nil {
		return err
	}
	return f.Train(c)
}

// SaveModels serialises the trained models to JSON for reuse across runs.
func (f *Framework) SaveModels(description string) ([]byte, error) {
	if f.JobTime == nil || f.TaskTime == nil {
		return nil, errNotTrained
	}
	return predict.SaveModels(f.JobTime, f.TaskTime, description)
}

// LoadModels installs previously saved model coefficients.
func (f *Framework) LoadModels(data []byte) error {
	jm, tm, err := predict.LoadModels(data)
	if err != nil {
		return err
	}
	f.JobTime, f.TaskTime = jm, tm
	return nil
}

// errNotTrained is returned by prediction methods before Train.
var errNotTrained = fmt.Errorf("saqp: models not trained; call Train or TrainDefault first")

// PredictJobSeconds predicts one job's execution time via Eq. 8.
func (f *Framework) PredictJobSeconds(je *JobEstimate) (float64, error) {
	if f.JobTime == nil {
		return 0, errNotTrained
	}
	return f.JobTime.PredictJob(je), nil
}

// PredictQuerySeconds predicts a whole query's response time (run alone on
// the default cluster) via the task model composed along the DAG's critical
// path (Section 5.4).
func (f *Framework) PredictQuerySeconds(qe *QueryEstimate) (float64, error) {
	if f.TaskTime == nil {
		return 0, errNotTrained
	}
	cc := cluster.DefaultConfig()
	ov := predict.Overheads{SchedPerTaskSec: cc.SchedulingOverheadSec, JobInitSec: cc.JobInitSec}
	slots := predict.Slots{Map: cc.Nodes * cc.MapSlotsPerNode, Reduce: cc.Nodes * cc.ReduceSlotsPerNode}
	return f.TaskTime.PredictQuery(qe, slots, ov), nil
}

// WRD computes the query's Weighted Resource Demand (Eq. 10) — the metric
// the SWRD scheduler minimises.
func (f *Framework) WRD(qe *QueryEstimate) (float64, error) {
	if f.TaskTime == nil {
		return 0, errNotTrained
	}
	return f.TaskTime.WRD(qe), nil
}

// SimulateQuery runs an estimated query alone on the default simulated
// cluster under the named scheduler and returns its response time in
// seconds. When an observer is attached (Options.Observer), the run is
// fully instrumented: query→job→task lifecycle trace spans, cluster
// metrics, scheduler decisions, and — if the models are trained — Eq. 8
// per-job prediction drift. Task durations are drawn from the hidden
// ground-truth cost model seeded by seed; per-task predictions come from
// the trained Eq. 9 task model, or a constant baseline before training.
func (f *Framework) SimulateQuery(id string, qe *QueryEstimate, scheduler string, seed uint64) (float64, error) {
	return f.SimulateQueryConfig(id, qe, scheduler, seed, cluster.DefaultConfig())
}

// SimulateQueryConfig is SimulateQuery on a caller-supplied cluster
// config — the hook behind cmd/saqp's fault-injection flags: set
// cc.Faults (and optionally cc.FaultSalt) to replay the query under a
// deterministic fault plan. A failed query (task attempt cap exhausted
// under the plan) returns its *TaskFailedError.
func (f *Framework) SimulateQueryConfig(id string, qe *QueryEstimate, scheduler string, seed uint64, cc ClusterConfig) (float64, error) {
	pol, err := schedulerByName(scheduler)
	if err != nil {
		return 0, err
	}
	f.count(obs.MSimulations)
	var pred cluster.TaskTimePredictor = cluster.ConstantPredictor(1)
	if f.TaskTime != nil {
		pred = f.TaskTime
	}
	q := cluster.BuildQuery(id, qe, defaultCostModel(seed), pred)
	sim := cluster.New(cc, sched.Instrument(pol, f.Obs)).SetObserver(f.Obs)
	sim.Submit(q, 0)
	if _, err := sim.Run(); err != nil {
		return 0, err
	}
	if q.Failed() {
		return 0, q.Err
	}
	if f.Obs != nil && f.JobTime != nil {
		for ji, je := range qe.Jobs {
			sj := q.Jobs[ji]
			f.Obs.Drift.RecordJob(je.Job.Type.String(), f.JobTime.PredictJob(je), sj.DoneTime-sj.SubmitTime, q.Faulted)
		}
	}
	return q.ResponseTime(), nil
}

// TPCHQuery returns one of the canonical TPC-H-derived queries ("q1",
// "q3", "q6", "q11", "q14", "q17", "q19"), parsed and resolved. Q14 and
// Q17 are the queries of the paper's motivating experiment; Q11 is its
// selectivity walk-through.
func TPCHQuery(name string) (*Query, error) { return workload.TPCHQuery(name) }

// TPCHNames lists the canonical TPC-H-derived query names, sorted.
func TPCHNames() []string { return workload.TPCHNames() }

// TPCHSQL returns the named canonical query's HiveQL text — the form
// Server.Submit accepts.
func TPCHSQL(name string) (string, error) { return workload.TPCHSQL(name) }

// NewEngine builds an execution engine with relations for every schema
// materialised at the given laptop-scale factor. The engine actually runs
// queries, providing ground-truth sizes to compare against Estimate.
func NewEngine(sf float64, seed uint64) *Engine {
	e := mapreduce.New(mapreduce.Config{BlockSize: 1 << 20})
	for _, s := range dataset.TPCH() {
		e.Register(dataset.Generate(s, sf, seed))
	}
	for _, s := range dataset.TPCDS() {
		e.Register(dataset.Generate(s, sf, seed))
	}
	return e
}

// SchedulerNames returns every scheduler name the experiment entry
// points accept, in the order the paper's evaluation presents them.
func SchedulerNames() []string { return sched.Names() }

// schedulerByName maps experiment names to policies via the sched
// package registry; unknown names produce an error enumerating the
// valid schedulers.
func schedulerByName(name string) (cluster.Scheduler, error) {
	pol, err := sched.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("saqp: %w", err)
	}
	return pol, nil
}

// defaultCostModel builds the hidden ground-truth cost model used by the
// experiment drivers.
func defaultCostModel(seed uint64) *trace.CostModel {
	return trace.NewDefaultCostModel(seed)
}
