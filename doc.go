// Package saqp is a from-scratch Go reproduction of "Semantics-Aware
// Prediction for Analytic Queries in MapReduce Environment" (Yu, Liu, Ding;
// ICPP'18 Companion): a framework that percolates query-level semantics
// from a HiveQL-style compiler down to the MapReduce scheduler, estimates
// per-job data selectivities from offline histograms, predicts job/task/
// query execution times with multivariate linear models, and schedules
// queries by Smallest Weighted Resource Demand (SWRD).
//
// The package is a facade over the internal subsystems:
//
//   - query/plan   — HiveQL subset parser and Hive-style DAG compiler
//   - catalog      — offline table statistics and equi-width histograms
//   - selectivity  — IS/FS estimation (paper Section 3, Eq. 1–7)
//   - predict      — multivariate time models (Section 4, Eq. 8–10)
//   - mapreduce    — a real in-memory MapReduce engine (ground truth)
//   - cluster      — a discrete-event simulator of the 9-node testbed
//   - sched        — HCS, HFS and SWRD scheduling policies
//   - workload     — TPC-H/DS query generator and Table 2 workload mixes
//   - serve        — concurrent serving engine with SWRD admission
//   - fault        — deterministic fault plans (crashes, stragglers,
//     transient task failures) replayed by the cluster simulator
//   - obs          — deterministic tracing, metrics and drift accounting
//
// Every simulated result is a pure function of its seeds: experiments,
// traces, metrics and fault replays are byte-identical across runs for
// equal configuration (see DESIGN.md for the determinism contract).
//
// Typical use:
//
//	fw, _ := saqp.NewFramework(saqp.Options{ScaleFactor: 10})
//	dag, _ := fw.Compile(`SELECT c_name, count(*) FROM customer
//	                      JOIN orders ON o_custkey = c_custkey
//	                      GROUP BY c_name`)
//	est, _ := fw.Estimate(dag)      // per-job D_in/D_med/D_out, task counts
//	fw.TrainDefault()               // fit Eq. 8/9 on a synthetic corpus
//	secs := fw.PredictQuerySeconds(est)
//	wrd := fw.WRD(est)              // Eq. 10 for SWRD scheduling
package saqp
