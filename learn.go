package saqp

import (
	"saqp/internal/learn"
)

// Online-learning re-exports, so callers stay on the facade.
type (
	// Learner is the versioned model registry with champion/challenger
	// semantics — the online model-lifecycle subsystem.
	Learner = learn.Registry
	// LearnerConfig assembles a Learner (window size, promotion margin,
	// minimum samples, seed champion).
	LearnerConfig = learn.Config
	// Promotion records one champion replacement in a Learner.
	Promotion = learn.Promotion
	// OnlineLearner is the recursive-least-squares incremental fitter a
	// Learner trains its challengers with; exposed for direct use.
	OnlineLearner = learn.Learner
)

// NewLearnerRegistry builds an online model-lifecycle registry from cfg
// alone — cold unless cfg seeds a champion. Framework.NewLearner is the
// variant that defaults the observer and seed champion from a
// framework's trained state.
func NewLearnerRegistry(cfg LearnerConfig) *Learner { return learn.NewRegistry(cfg) }

// NewLearner builds an online model-lifecycle registry. Unset config
// fields default from the framework: the observer is the framework's,
// and — when the framework has trained models — they seed the registry
// as the version-1 serving champion, so online learning starts from the
// batch fit instead of cold.
func (f *Framework) NewLearner(cfg LearnerConfig) *Learner {
	if cfg.Observer == nil {
		cfg.Observer = f.Obs
	}
	if cfg.Champion == nil && cfg.ChampionTasks == nil {
		cfg.Champion, cfg.ChampionTasks = f.JobTime, f.TaskTime
	}
	return learn.NewRegistry(cfg)
}
