// Accuracy study: reproduce the paper's prediction-accuracy artifacts —
// Table 3 (job time model, Eq. 8), Tables 4 and 5 (map/reduce task models,
// Eq. 9), Figure 6 (job scatter) and Figure 7 (query-level prediction on
// 100 GB queries).
//
// The corpus mirrors Section 5.1: ~1,000 TPC-H/TPC-DS-shaped queries over
// 1–100 GB inputs, executed on the simulated cluster; 3/4 train, 1/4 test.
// Pass -queries to change corpus size (default 240 for a fast run).
//
//	go run ./examples/accuracy [-queries 1000]
package main

import (
	"flag"
	"fmt"
	"log"

	"saqp"
)

func main() {
	queries := flag.Int("queries", 240, "corpus size (paper: 1000)")
	flag.Parse()

	cfg := saqp.DefaultExperimentConfig()
	cfg.CorpusQueries = *queries
	fmt.Printf("Building corpus of %d queries (%d jobs after compilation)...\n",
		*queries, 0)
	art, err := saqp.BuildTrainedArtifacts(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Corpus: %d queries -> %d MapReduce jobs, %d task samples\n",
		len(art.Corpus.Runs), art.Corpus.NumJobs(), len(art.Corpus.TaskSamples))

	t3 := saqp.ReproduceTable3(art)
	fmt.Println("\nTable 3 — job execution time (training set):")
	for _, r := range t3.TrainRows {
		fmt.Printf("  %-8s R²=%6.2f%%  avg err=%6.2f%%  (n=%d)\n",
			r.Op, 100*r.RSquared, 100*r.AvgError, r.N)
	}
	fmt.Printf("  TestSet avg err=%6.2f%% over %d jobs (paper: 13.98%%)\n",
		100*t3.TestSetAvgError, t3.TestSetJobs)

	fmt.Println("\nTable 4 — map task time (training set):")
	for _, r := range saqp.ReproduceTable4(art) {
		fmt.Printf("  %-8s R²=%6.2f%%  avg err=%6.2f%%  (n=%d)\n",
			r.Op, 100*r.RSquared, 100*r.AvgError, r.N)
	}
	fmt.Println("\nTable 5 — reduce task time (training set):")
	for _, r := range saqp.ReproduceTable5(art) {
		fmt.Printf("  %-8s R²=%6.2f%%  avg err=%6.2f%%  (n=%d)\n",
			r.Op, 100*r.RSquared, 100*r.AvgError, r.N)
	}

	pts := saqp.ReproduceFig6(art)
	var under, over int
	for _, p := range pts {
		if p.Predicted < p.Actual {
			under++
		} else {
			over++
		}
	}
	fmt.Printf("\nFigure 6 — %d test-set jobs scatter around the perfect line "+
		"(%d under, %d over)\n", len(pts), under, over)

	f7, err := saqp.ReproduceFig7(art, cfg, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 7 — query response prediction on 100 GB queries: "+
		"avg err %.2f%% (paper: 8.3%%)\n", 100*f7.AvgError)
}
