// Accuracy study: reproduce the paper's prediction-accuracy artifacts —
// Table 3 (job time model, Eq. 8), Tables 4 and 5 (map/reduce task models,
// Eq. 9), Figure 6 (job scatter) and Figure 7 (query-level prediction on
// 100 GB queries).
//
// The corpus mirrors Section 5.1: ~1,000 TPC-H/TPC-DS-shaped queries over
// 1–100 GB inputs, executed on the simulated cluster; 3/4 train, 1/4 test.
// Pass -queries to change corpus size (default 240 for a fast run).
//
//	go run ./examples/accuracy [-queries 1000]
package main

import (
	"flag"
	"fmt"
	"log"

	"saqp"
)

func main() {
	queries := flag.Int("queries", 240, "corpus size (paper: 1000)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"accuracy reproduces the paper's prediction-accuracy artifacts: Table 3\n"+
				"(job time model, Eq. 8), Tables 4-5 (map/reduce task models, Eq. 9),\n"+
				"Figure 6 (job scatter) and Figure 7 (query-level prediction).\n\n"+
				"usage: go run ./examples/accuracy [flags]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := saqp.DefaultExperimentConfig()
	cfg.CorpusQueries = *queries
	fmt.Printf("Building corpus of %d queries (%d jobs after compilation)...\n",
		*queries, 0)
	art, err := saqp.BuildTrainedArtifacts(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Corpus: %d queries -> %d MapReduce jobs, %d task samples\n",
		len(art.Corpus.Runs), art.Corpus.NumJobs(), len(art.Corpus.TaskSamples))

	// Replay the training samples through the observability layer's drift
	// recorder and print Tables 3-5 from its snapshot: the same numbers
	// live instrumentation accumulates during simulated runs.
	o := saqp.NewObserver(nil)
	saqp.RecordCorpusDrift(art, o)
	drift := o.Drift.Snapshot()

	t3 := saqp.ReproduceTable3(art)
	fmt.Println("\nTable 3 — job execution time (training set, via drift recorder):")
	for _, r := range drift.Jobs {
		fmt.Printf("  %-8s R²=%6.2f%%  avg err=%6.2f%%  (n=%d)\n",
			r.Category, 100*r.RSquared, 100*r.MeanRelError, r.N)
	}
	fmt.Printf("  TestSet avg err=%6.2f%% over %d jobs (paper: 13.98%%)\n",
		100*t3.TestSetAvgError, t3.TestSetJobs)

	fmt.Println("\nTables 4 and 5 — map/reduce task time (training set, via drift recorder):")
	for _, r := range drift.Tasks {
		fmt.Printf("  %-16s R²=%6.2f%%  avg err=%6.2f%%  (n=%d)\n",
			r.Category, 100*r.RSquared, 100*r.MeanRelError, r.N)
	}
	together := map[bool][]saqp.GroupAccuracy{false: saqp.ReproduceTable4(art), true: saqp.ReproduceTable5(art)}
	for _, reduce := range []bool{false, true} {
		for _, r := range together[reduce] {
			if r.Op != "Together" {
				continue
			}
			phase := "map"
			if reduce {
				phase = "reduce"
			}
			fmt.Printf("  Together/%-7s R²=%6.2f%%  avg err=%6.2f%%  (n=%d)\n",
				phase, 100*r.RSquared, 100*r.AvgError, r.N)
		}
	}

	pts := saqp.ReproduceFig6(art)
	var under, over int
	for _, p := range pts {
		if p.Predicted < p.Actual {
			under++
		} else {
			over++
		}
	}
	fmt.Printf("\nFigure 6 — %d test-set jobs scatter around the perfect line "+
		"(%d under, %d over)\n", len(pts), under, over)

	f7, err := saqp.ReproduceFig7(art, cfg, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 7 — query response prediction on 100 GB queries: "+
		"avg err %.2f%% (paper: 8.3%%)\n", 100*f7.AvgError)
}
