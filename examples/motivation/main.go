// Motivation: reproduce the paper's Figures 1–2. Three queries — QA and QC
// (small, 10 GB, two jobs each) and QB (large, 100 GB, four jobs) — are
// submitted back to back. Under the semantics-oblivious Hadoop Capacity
// Scheduler, QB's jobs interleave with the small queries' second-stage
// jobs and delay them ~3x; the semantics-aware SWRD scheduler keeps the
// small queries at their standalone response times.
//
//	go run ./examples/motivation
package main

import (
	"fmt"
	"log"
	"strings"

	"saqp"
)

func main() {
	cfg := saqp.DefaultExperimentConfig()
	cfg.CorpusQueries = 120 // train the task-time models for WRD
	fmt.Println("Training prediction models (needed by SWRD's WRD metric)...")
	art, err := saqp.BuildTrainedArtifacts(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, sch := range []string{saqp.SchedulerHCS, saqp.SchedulerSWRD} {
		res, err := saqp.ReproduceFig2(sch, art, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s ===\n", sch)
		for _, q := range res.Queries {
			fmt.Printf("%-3s input=%4.0f GB  response=%6.1f s  alone=%6.1f s  slowdown=%.2fx\n",
				q.Name, q.InputBytes/1e9, q.Response, q.Alone, q.Slowdown)
		}
		fmt.Println("\nExecution timeline (each bar is one job's task activity):")
		printTimeline(res)
	}
	fmt.Println("\nPaper Figure 2: under HCS, QB's jobs block QA-J2 and QC-J2,")
	fmt.Println("delaying the small queries ~3x versus running alone.")
}

// printTimeline renders a crude Gantt chart of job spans.
func printTimeline(res *saqp.MotivationResult) {
	const width = 72
	scale := res.Makespan / width
	if scale <= 0 {
		return
	}
	for _, q := range res.Queries {
		for i, sp := range q.JobSpans {
			start := int(sp[0] / scale)
			end := int(sp[1] / scale)
			if end <= start {
				end = start + 1
			}
			bar := strings.Repeat(" ", start) + strings.Repeat("#", end-start)
			fmt.Printf("  %-3s %-12s |%-*s| %5.0f-%4.0fs\n", q.Name, q.JobLabels[i], width, bar, sp[0], sp[1])
		}
	}
}
