// Scheduler comparison: reproduce the paper's Figure 8. The Bing and
// Facebook production workload mixes (Table 2) are replayed with Poisson
// arrivals against the simulated 9-node cluster under three schedulers:
// the Hadoop Capacity Scheduler (HCS), the Hadoop Fair Scheduler (HFS),
// and the paper's semantics-aware Smallest-WRD-first scheduler (SWRD).
//
//	go run ./examples/scheduler-comparison [-gap 12] [-queries 200]
package main

import (
	"flag"
	"fmt"
	"log"

	"saqp"
)

func main() {
	gap := flag.Float64("gap", 12, "mean Poisson inter-arrival gap (seconds)")
	queries := flag.Int("queries", 200, "training corpus size")
	flag.Parse()

	cfg := saqp.DefaultExperimentConfig()
	cfg.CorpusQueries = *queries
	fmt.Printf("Training prediction models on %d synthetic queries...\n", *queries)
	art, err := saqp.BuildTrainedArtifacts(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, mix := range []string{"bing", "facebook"} {
		rs, err := saqp.ReproduceFig8(mix, art, cfg, *gap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s workload (100 queries, mean gap %.0f s) ===\n", mix, *gap)
		byName := map[string]float64{}
		var worst float64
		for _, r := range rs {
			byName[r.Scheduler] = r.AvgResponseSec
			if r.AvgResponseSec > worst {
				worst = r.AvgResponseSec
			}
		}
		for _, r := range rs {
			bar := int(40 * r.AvgResponseSec / worst)
			fmt.Printf("%-5s %8.1f s  %s\n", r.Scheduler, r.AvgResponseSec, repeat('#', bar))
		}
		fmt.Printf("SWRD improves on HFS by %.1f%%, on HCS by %.1f%%\n",
			100*(1-byName["SWRD"]/byName["HFS"]),
			100*(1-byName["SWRD"]/byName["HCS"]))
	}
	fmt.Println("\nPaper Figure 8: SWRD reduces average response times by 40.2%/43.9%")
	fmt.Println("versus HFS and 72.8%/27.4% versus HCS on Bing/Facebook.")
}

func repeat(c byte, n int) string {
	if n < 1 {
		n = 1
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
