// Scheduler comparison: reproduce the paper's Figure 8. The Bing and
// Facebook production workload mixes (Table 2) are replayed with Poisson
// arrivals against the simulated 9-node cluster under three schedulers:
// the Hadoop Capacity Scheduler (HCS), the Hadoop Fair Scheduler (HFS),
// and the paper's semantics-aware Smallest-WRD-first scheduler (SWRD).
//
// The runs are observable: -trace writes a Chrome trace-event JSON of
// every simulated run (open in ui.perfetto.dev), -metrics a Prometheus
// text-format dump, and the summary includes the live prediction-drift
// snapshot accumulated while the workloads executed.
//
//	go run ./examples/scheduler-comparison [-gap 12] [-queries 200] [-trace out.json] [-metrics out.prom]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"saqp"
)

func main() {
	gap := flag.Float64("gap", 12, "mean Poisson inter-arrival gap (seconds)")
	queries := flag.Int("queries", 200, "training corpus size")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the simulated runs to this file")
	promOut := flag.String("metrics", "", "write Prometheus text-format metrics to this file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"scheduler-comparison reproduces the paper's Figure 8: the Bing and\n"+
				"Facebook workload mixes (Table 2) replayed with Poisson arrivals under\n"+
				"HCS, HFS and SWRD on the simulated 9-node cluster.\n\n"+
				"usage: go run ./examples/scheduler-comparison [flags]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var traceFile *os.File
	var sink *saqp.TraceSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		traceFile = f
		sink = saqp.NewTraceSink(f)
	}
	o := saqp.NewObserver(sink)

	cfg := saqp.DefaultExperimentConfig()
	cfg.CorpusQueries = *queries
	cfg.Observer = o
	fmt.Printf("Training prediction models on %d synthetic queries...\n", *queries)
	art, err := saqp.BuildTrainedArtifacts(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, mix := range []string{"bing", "facebook"} {
		rs, err := saqp.ReproduceFig8(mix, art, cfg, *gap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s workload (100 queries, mean gap %.0f s) ===\n", mix, *gap)
		byName := map[string]float64{}
		var worst float64
		for _, r := range rs {
			byName[r.Scheduler] = r.AvgResponseSec
			if r.AvgResponseSec > worst {
				worst = r.AvgResponseSec
			}
		}
		for _, r := range rs {
			bar := int(40 * r.AvgResponseSec / worst)
			fmt.Printf("%-5s %8.1f s  %s\n", r.Scheduler, r.AvgResponseSec, repeat('#', bar))
		}
		fmt.Printf("SWRD improves on HFS by %.1f%%, on HCS by %.1f%%\n",
			100*(1-byName["SWRD"]/byName["HFS"]),
			100*(1-byName["SWRD"]/byName["HCS"]))
	}
	fmt.Println("\nPaper Figure 8: SWRD reduces average response times by 40.2%/43.9%")
	fmt.Println("versus HFS and 72.8%/27.4% versus HCS on Bing/Facebook.")

	// Live prediction drift accumulated across every simulated run: Eq. 8
	// job predictions against simulated times under concurrent load, and
	// the estimator's IS/FS output against the oracle catalog.
	drift := o.Drift.Snapshot()
	fmt.Println("\nPrediction drift during the runs (job time under load):")
	for _, s := range drift.Jobs {
		fmt.Printf("  %-8s mean rel err=%6.1f%%  pred mean=%7.1f s  actual mean=%7.1f s  (n=%d)\n",
			s.Category, 100*s.MeanRelError, s.MeanPredicted, s.MeanActual, s.N)
	}
	fmt.Println("Selectivity estimate drift (estimator vs oracle):")
	for _, s := range drift.Estimates {
		fmt.Printf("  %-12s mean rel err=%6.1f%%  (n=%d)\n", s.Category, 100*s.MeanRelError, s.N)
	}

	if err := o.Close(); err != nil {
		log.Fatal(err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nWrote trace to %s (open in ui.perfetto.dev)\n", *traceOut)
	}
	if *promOut != "" {
		f, err := os.Create(*promOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := o.Metrics.WritePrometheus(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Wrote metrics to %s\n", *promOut)
	}
}

func repeat(c byte, n int) string {
	if n < 1 {
		n = 1
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
