// Quickstart: compile an analytic query, inspect its MapReduce plan and
// semantics-aware selectivity estimates, then execute it for real in the
// in-memory MapReduce engine and compare estimated vs measured sizes.
//
// This walks the paper's Section 3.2 example (modified TPC-H Q11) end to
// end: two join jobs and one groupby job, with the nation predicate's
// selectivity percolating along the query tree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"saqp"
)

const q11 = `
SELECT ps_partkey, sum(ps_supplycost*ps_availqty)
FROM nation n JOIN supplier s ON
  s.s_nationkey = n.n_nationkey AND n.n_name <> 'n_name#b~~~~'
JOIN partsupp ps ON
  ps.ps_suppkey = s.s_suppkey
GROUP BY ps_partkey`

func main() {
	// A framework over offline statistics for the full-scale database...
	fw, err := saqp.NewFramework(saqp.Options{ScaleFactor: 1})
	if err != nil {
		log.Fatal(err)
	}

	dag, err := fw.Compile(q11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Compiled plan (cross-layer semantics percolation keeps")
	fmt.Println("operators, predicates and dependencies attached):")
	for _, j := range dag.Jobs {
		fmt.Printf("  %s\n", j.Label())
	}

	est, err := fw.Estimate(dag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSelectivity estimation at scale factor 1 (≈1 GB TPC-H):")
	for _, je := range est.Jobs {
		fmt.Printf("  %-2s %-8s IS=%.4f FS=%.4f  est output tuples=%.0f\n",
			je.Job.ID, je.Job.Type, je.IS, je.FS, je.OutRows)
	}
	fmt.Println("\n  (paper: the 96% nation predicate relays through both joins;")
	fmt.Println("   the groupby cardinality approaches the 200,000 partkey domain)")

	// ...and ground truth: the same plan executed over materialised data at
	// laptop scale (sf 0.01) in the real MapReduce engine.
	fwSmall, err := saqp.NewFramework(saqp.Options{ScaleFactor: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	estSmall, err := fwSmall.Estimate(dag)
	if err != nil {
		log.Fatal(err)
	}
	engine := saqp.NewEngine(0.01, 42)
	res, err := engine.RunQuery(dag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEstimated vs measured output tuples (sf 0.01, real execution):")
	for _, je := range estSmall.Jobs {
		st := res.Stats[je.Job.ID]
		fmt.Printf("  %-2s estimated=%8.0f  measured=%8d\n", je.Job.ID, je.OutRows, st.OutRows)
	}
	fmt.Printf("\nFinal result: %d groups; first row: %v\n",
		res.Final.NumRows(), res.Final.Rows[0])
}
