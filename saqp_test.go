package saqp_test

import (
	"math"
	"sync"
	"testing"

	"saqp"
)

// Experiments share one trained artifact set; building it dominates test
// time, so it is constructed once.
var (
	artOnce sync.Once
	art     *saqp.TrainedArtifacts
	artCfg  saqp.ExperimentConfig
	artErr  error
)

func artifacts(t testing.TB) (*saqp.TrainedArtifacts, saqp.ExperimentConfig) {
	t.Helper()
	artOnce.Do(func() {
		artCfg = saqp.DefaultExperimentConfig()
		artCfg.CorpusQueries = 160
		art, artErr = saqp.BuildTrainedArtifacts(artCfg)
	})
	if artErr != nil {
		t.Fatal(artErr)
	}
	return art, artCfg
}

func TestFrameworkCompileEstimate(t *testing.T) {
	fw, err := saqp.NewFramework(saqp.Options{ScaleFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	dag, err := fw.Compile(`SELECT c_name, count(*) FROM customer
		JOIN orders ON o_custkey = c_custkey GROUP BY c_name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(dag.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(dag.Jobs))
	}
	est, err := fw.Estimate(dag)
	if err != nil {
		t.Fatal(err)
	}
	if est.ByID["J1"].OutRows <= 0 {
		t.Fatal("estimate produced no rows")
	}
	// Untrained predictions must fail loudly.
	if _, err := fw.PredictQuerySeconds(est); err == nil {
		t.Fatal("prediction before training should error")
	}
	if _, err := fw.WRD(est); err == nil {
		t.Fatal("WRD before training should error")
	}
}

func TestFrameworkCompileErrors(t *testing.T) {
	fw, err := saqp.NewFramework(saqp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Compile(`SELEC x`); err == nil {
		t.Fatal("bad SQL should fail")
	}
	if _, err := fw.Compile(`SELECT ghost FROM nowhere`); err == nil {
		t.Fatal("unknown table should fail")
	}
}

func TestFrameworkTrainAndPredict(t *testing.T) {
	a, _ := artifacts(t)
	fw, err := saqp.NewFramework(saqp.Options{ScaleFactor: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Train(a.Corpus); err != nil {
		t.Fatal(err)
	}
	dag, err := fw.Compile(`SELECT l_shipmode, sum(l_extendedprice) FROM lineitem
		WHERE l_shipdate < 9500 GROUP BY l_shipmode`)
	if err != nil {
		t.Fatal(err)
	}
	est, err := fw.Estimate(dag)
	if err != nil {
		t.Fatal(err)
	}
	secs, err := fw.PredictQuerySeconds(est)
	if err != nil {
		t.Fatal(err)
	}
	if secs < 10 || secs > 3600 {
		t.Fatalf("predicted %v s for a ~16 GB aggregation, implausible", secs)
	}
	wrd, err := fw.WRD(est)
	if err != nil {
		t.Fatal(err)
	}
	if wrd <= 0 {
		t.Fatalf("WRD = %v", wrd)
	}
	jsec, err := fw.PredictJobSeconds(est.ByID["J1"])
	if err != nil || jsec <= 0 {
		t.Fatalf("job prediction = %v, %v", jsec, err)
	}
}

func TestReproduceTable2(t *testing.T) {
	rows := saqp.ReproduceTable2()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Bing != 44 || rows[0].Facebook != 85 {
		t.Fatalf("bin 1 = %+v", rows[0])
	}
}

func TestReproduceTable3Shape(t *testing.T) {
	a, _ := artifacts(t)
	res := saqp.ReproduceTable3(a)
	if len(res.TrainRows) < 3 {
		t.Fatalf("train rows = %d", len(res.TrainRows))
	}
	for _, r := range res.TrainRows {
		if r.N < 5 {
			continue
		}
		// Join (and the pooled row) absorb the hot-reducer scatter the
		// paper describes; see internal/predict for the detailed bands.
		band := 0.75
		if r.Op == "Join" || r.Op == "All" {
			band = 0.55
		} else if r.Op == "Extract" {
			band = 0.65
		}
		if r.RSquared < band || r.AvgError > 0.35 {
			t.Errorf("Table3 %s out of paper-like band: R²=%.3f err=%.3f", r.Op, r.RSquared, r.AvgError)
		}
	}
	// Paper's TestSet row: 13.98%; allow a generous band.
	if res.TestSetAvgError <= 0 || res.TestSetAvgError > 0.30 {
		t.Errorf("test-set avg error = %.3f", res.TestSetAvgError)
	}
}

func TestReproduceTables4And5Shape(t *testing.T) {
	a, _ := artifacts(t)
	for i, rows := range [][]saqp.GroupAccuracy{saqp.ReproduceTable4(a), saqp.ReproduceTable5(a)} {
		if len(rows) != 4 {
			t.Fatalf("table %d rows = %d", 4+i, len(rows))
		}
		for _, r := range rows {
			if r.RSquared < 0.7 || r.AvgError > 0.30 {
				t.Errorf("Table%d %s: R²=%.3f err=%.3f", 4+i, r.Op, r.RSquared, r.AvgError)
			}
		}
	}
}

func TestReproduceFig6Scatter(t *testing.T) {
	a, _ := artifacts(t)
	pts := saqp.ReproduceFig6(a)
	if len(pts) < 50 {
		t.Fatalf("scatter points = %d", len(pts))
	}
	// Points must hug the perfect line on average.
	var sum float64
	n := 0
	for _, p := range pts {
		if p.Actual > 0 {
			sum += math.Abs(p.Predicted-p.Actual) / p.Actual
			n++
		}
	}
	if avg := sum / float64(n); avg > 0.30 {
		t.Errorf("Fig6 mean deviation from perfect line = %.3f", avg)
	}
}

func TestReproduceFig7(t *testing.T) {
	a, cfg := artifacts(t)
	res, err := saqp.ReproduceFig7(a, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Paper reports 8.3% on 100 GB queries.
	if res.AvgError > 0.20 {
		t.Errorf("Fig7 avg error = %.3f", res.AvgError)
	}
}

func TestReproduceFig2Thrashing(t *testing.T) {
	a, cfg := artifacts(t)
	hcs, err := saqp.ReproduceFig2(saqp.SchedulerHCS, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	swrd, err := saqp.ReproduceFig2(saqp.SchedulerSWRD, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(m *saqp.MotivationResult, name string) saqp.MotivationQuery {
		for _, q := range m.Queries {
			if q.Name == name {
				return q
			}
		}
		t.Fatalf("missing query %s", name)
		return saqp.MotivationQuery{}
	}
	// Paper Fig. 2: the small queries are delayed ~3x under HCS.
	for _, name := range []string{"QA", "QC"} {
		h := get(hcs, name)
		if h.Slowdown < 1.6 {
			t.Errorf("HCS %s slowdown = %.2f, want >= 1.6 (paper ~3x)", name, h.Slowdown)
		}
		s := get(swrd, name)
		if s.Slowdown > 1.35 {
			t.Errorf("SWRD %s slowdown = %.2f, want near 1x", name, s.Slowdown)
		}
	}
	// QB is a four-job 100 GB query; QA two jobs.
	if len(get(hcs, "QB").JobSpans) != 4 {
		t.Errorf("QB spans = %d, want 4 jobs", len(get(hcs, "QB").JobSpans))
	}
	if len(get(hcs, "QA").JobSpans) != 2 {
		t.Errorf("QA spans = %d, want 2 jobs", len(get(hcs, "QA").JobSpans))
	}
}

func TestReproduceFig8Shape(t *testing.T) {
	a, cfg := artifacts(t)
	for _, mix := range []string{"bing", "facebook"} {
		rs, err := saqp.ReproduceFig8(mix, a, cfg, 12)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 3 {
			t.Fatalf("%s results = %d", mix, len(rs))
		}
		m := map[string]float64{}
		for _, r := range rs {
			if r.Queries != 100 {
				t.Fatalf("%s %s ran %d queries", mix, r.Scheduler, r.Queries)
			}
			m[r.Scheduler] = r.AvgResponseSec
		}
		// SWRD must win on both workloads (the paper's headline claim).
		if !(m[saqp.SchedulerSWRD] < m[saqp.SchedulerHFS] && m[saqp.SchedulerSWRD] < m[saqp.SchedulerHCS]) {
			t.Errorf("%s: SWRD not best: %v", mix, m)
		}
		if mix == "bing" {
			// On Bing the improvement vs HCS is dramatic (paper: 72.8%).
			gain := 1 - m[saqp.SchedulerSWRD]/m[saqp.SchedulerHCS]
			if gain < 0.5 {
				t.Errorf("bing SWRD-vs-HCS gain = %.2f, want large", gain)
			}
			// HCS is the worst policy on the big-query-heavy mix.
			if m[saqp.SchedulerHCS] < m[saqp.SchedulerHFS] {
				t.Errorf("bing: HCS should be worst: %v", m)
			}
		}
	}
}

func TestReproduceFig5(t *testing.T) {
	rows, err := saqp.ReproduceFig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper Section 3.2: groupby output cardinality ~200,000.
	j3 := rows[2]
	if j3.Type != "Groupby" {
		t.Fatalf("J3 type = %s", j3.Type)
	}
	if math.Abs(j3.OutRows-200000)/200000 > 0.1 {
		t.Errorf("J3 out rows = %.0f, want ~200000", j3.OutRows)
	}
	for _, r := range rows {
		if r.IS < 0 || r.IS > 1 || r.FS < 0 {
			t.Errorf("job %s selectivities out of range: IS=%v FS=%v", r.ID, r.IS, r.FS)
		}
	}
}

func TestNewEngineExecutesQuery(t *testing.T) {
	fw, err := saqp.NewFramework(saqp.Options{ScaleFactor: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	e := saqp.NewEngine(0.01, 7)
	dag, err := fw.Compile(`SELECT n_name, count(*) FROM nation JOIN supplier ON s_nationkey = n_nationkey GROUP BY n_name`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunQuery(dag)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.NumRows() == 0 {
		t.Fatal("engine produced no rows")
	}
}

func TestReproduceFig8UnknownMix(t *testing.T) {
	a, cfg := artifacts(t)
	if _, err := saqp.ReproduceFig8("yahoo", a, cfg, 10); err == nil {
		t.Fatal("unknown mix should error")
	}
}

func TestFig8PerBinFairness(t *testing.T) {
	// The paper's fairness narrative: SWRD turns small queries (bin 1)
	// around far faster than HCS without materially hurting the biggest
	// bin. Percentiles and per-bin means must be internally consistent.
	a, cfg := artifacts(t)
	rs, err := saqp.ReproduceFig8("bing", a, cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]saqp.Fig8Result{}
	for _, r := range rs {
		byName[r.Scheduler] = r
		if r.P50Sec > r.P95Sec {
			t.Fatalf("%s: p50 %v > p95 %v", r.Scheduler, r.P50Sec, r.P95Sec)
		}
		for bin := 1; bin <= 5; bin++ {
			if _, ok := r.AvgByBin[bin]; !ok {
				t.Fatalf("%s: missing bin %d", r.Scheduler, bin)
			}
		}
	}
	hcs, swrd := byName[saqp.SchedulerHCS], byName[saqp.SchedulerSWRD]
	if swrd.AvgByBin[1] >= hcs.AvgByBin[1] {
		t.Fatalf("SWRD did not speed up bin-1 queries: %v vs %v",
			swrd.AvgByBin[1], hcs.AvgByBin[1])
	}
	// Big queries must not be starved into oblivion: within 3x of HCS.
	if swrd.AvgByBin[5] > 3*hcs.AvgByBin[5] {
		t.Fatalf("SWRD starves bin-5 queries: %v vs %v",
			swrd.AvgByBin[5], hcs.AvgByBin[5])
	}
}
