GO      ?= go
BIN     := bin
SAQPVET := $(BIN)/saqpvet

.PHONY: all build test race lint lint-self bench-alloc fuzz-smoke stress cover-serve bench bench-serve bench-fault bench-learn bench-net bench-shard bench-micro bench-micro-rebase ci clean

all: build

build:
	$(GO) build ./...

$(SAQPVET): $(shell find cmd/saqpvet internal/analysis -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	@mkdir -p $(BIN)
	$(GO) build -o $(SAQPVET) ./cmd/saqpvet

# Static analysis: the stock go vet suite plus the project's nine
# saqpvet analyzers (determinism, doccheck, floatcmp, lockcheck,
# errdrop, allocfree, ctxleak, atomiccheck, leakcheck — see
# internal/analysis/registry), run through the vet -vettool protocol so
# per-package results are cached like any other vet check.
lint: $(SAQPVET)
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath $(SAQPVET)) ./...

# The analyzers' own golden-fixture suites plus the tree-wide
# cleanliness gate, run separately from `test` so a broken analyzer
# shows up as a lint failure rather than a buried test failure.
lint-self:
	$(GO) test -count=1 ./internal/analysis/...

# Runtime half of the //saqp:hotpath contract: every annotated function
# must measure zero heap allocations per call via testing.AllocsPerRun.
bench-alloc:
	$(GO) test -count=1 -run TestHotPathAllocs \
		./internal/mapreduce ./internal/selectivity ./internal/histogram \
		./internal/dataset ./internal/predict ./internal/serve ./internal/obs \
		./internal/net/proto ./internal/sketch

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A short native-fuzzing burst over the full compile→estimate→execute
# stack, the randomized estimator-vs-engine agreement test, and the
# wire-protocol decoder (no panics, no over-reads, byte-exact
# re-encoding of every accepted frame).
fuzz-smoke:
	$(GO) test -run TestRandomQueriesEstimatorVsEngine -count=1 ./internal/mapreduce
	$(GO) test -fuzz FuzzEngineQuery -fuzztime 10s -run '^$$' ./internal/mapreduce
	$(GO) test -fuzz FuzzProtocolDecode -fuzztime 10s -run '^$$' ./internal/net/proto

# Concurrency stress: the serving-layer and network-frontend stress/
# property suites under the race detector, run twice to vary goroutine
# interleavings (includes the 64-connection TCP stress test at the
# root, the connection-lifecycle suite in internal/net, and the
# shard-cluster failover stress test with its byte-identical
# event-log replay check).
stress:
	$(GO) test -race -count=2 -run 'TestServer|TestProperty|TestSingleFlight|TestDeterministicSnapshots|TestShardCluster|TestEventLog|TestSubmitParks|TestSentinelQuorum' \
		. ./internal/serve ./internal/selectivity ./internal/net ./internal/shardserve

# Coverage gate for the serving engine: fail if internal/serve drops
# below 85% statement coverage.
SERVE_COVER_FLOOR := 85.0
cover-serve:
	@mkdir -p $(BIN)
	@$(GO) test -coverprofile=$(BIN)/serve.cover ./internal/serve > /dev/null
	@pct=$$($(GO) tool cover -func=$(BIN)/serve.cover | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/serve statement coverage: $$pct% (floor $(SERVE_COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(SERVE_COVER_FLOOR)" 'BEGIN { exit (p+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage below floor"; exit 1; }

# Open-loop serving benchmark: 1000 TPC-H submissions from 16 concurrent
# submitters through one saqp.Server with request tracing and SLO
# burn-rate tracking on; fails on any lost completion or a cache
# hit-rate at or below 50%. Writes bench-out/BENCH_serve.json and the
# retained span trees, and prints a delta against the committed
# baseline in testdata/bench_baseline/.
SERVE_QUERIES ?= 1000
bench-serve:
	@mkdir -p bench-out
	$(GO) run -race ./cmd/benchrunner -serve -serve-queries $(SERVE_QUERIES) \
		-concurrency 16 -bench-out bench-out \
		-spans bench-out/serve_spans.json \
		-baseline testdata/bench_baseline/BENCH_serve.json

# Fault-injection replay: the TPC-H set under the default deterministic
# fault plan (node crashes, slowdown windows, transient task failures).
# Fails unless recovery completes every query; writes
# bench-out/BENCH_fault.json with retry counts and p50/p99 inflation.
FAULT_SEED ?= 2018
bench-fault:
	@mkdir -p bench-out
	$(GO) run ./cmd/benchrunner -faults -fault-seed $(FAULT_SEED) \
		-fault-min-completion 1 -bench-out bench-out -csv bench-out

# Online-learning convergence replay: a seeded corpus fed one completed
# query at a time into a cold model-lifecycle registry. Fails unless the
# final challenger's average relative error stays within 10% of a batch
# fit over the same samples; writes bench-out/BENCH_learn.json with the
# error-vs-samples curve and the promotion sequence.
LEARN_QUERIES ?= 120
bench-learn:
	@mkdir -p bench-out
	$(GO) run ./cmd/benchrunner -learn -learn-queries $(LEARN_QUERIES) \
		-learn-gate 1.10 -bench-out bench-out -csv bench-out

# Network-frontend benchmark: NET_QUERIES TPC-H submissions over real
# loopback sockets through the RESP-style TCP frontend — NET_CONNS
# client connections each SUBMITting and WAITing over the wire, so
# latency includes encode, socket and parse time. Fails on any lost
# completion, -BUSY refusal or client error at this default load, and
# gates p99 at 1.5x the committed baseline in testdata/bench_baseline/.
# Writes bench-out/BENCH_net.json.
NET_QUERIES ?= 400
NET_CONNS   ?= 8
bench-net:
	@mkdir -p bench-out
	$(GO) run ./cmd/benchrunner -net -net-queries $(NET_QUERIES) \
		-net-conns $(NET_CONNS) -bench-out bench-out \
		-net-baseline testdata/bench_baseline/BENCH_net.json -net-p99-gate 1.5

# Sharded-serving benchmark: the same closed-loop TPC-H load through
# one engine and through a SHARD_SHARDS-way fingerprint-routed cluster
# (both with online learning on, so the comparison is fair), then a
# failover phase under a deterministic crash plan. Fails on any lost
# completion, on a failover phase with no actual failover, or when
# cluster/single throughput scaling falls below SHARD_SCALE_GATE
# derated by min(1, cores/shards). Writes bench-out/BENCH_shard.json
# and prints a delta against the committed baseline.
SHARD_QUERIES    ?= 4000
SHARD_SHARDS     ?= 4
SHARD_SCALE_GATE ?= 2.5
bench-shard:
	@mkdir -p bench-out
	$(GO) run ./cmd/benchrunner -shard -shard-queries $(SHARD_QUERIES) \
		-shard-shards $(SHARD_SHARDS) -bench-out bench-out \
		-shard-baseline testdata/bench_baseline/BENCH_shard.json \
		-shard-scale-gate $(SHARD_SCALE_GATE)

# Microbenchmarks + sketch-accuracy gate: benchstat-comparable
# BenchmarkMicro* families (sketch ops, estimator, engine
# map/shuffle/reduce, serve-cache lookup) with -benchmem, parsed and
# gated by cmd/benchrunner -micro against the committed baseline in
# testdata/bench_baseline/BENCH_micro.json — allocs/op may never
# regress; ns/op may drift up to MICRO_TIME_GATE x (machine variance).
# The same run replays the accuracy contracts on TPC-H: every HLL
# distinct estimate within 5% of the exact catalog, and Bloom semi-join
# pruning byte-identical to the unpruned engine (zero false negatives).
# Writes bench-out/BENCH_micro.{txt,json}; the raw text is
# benchstat-ready for manual before/after comparisons.
MICRO_PKGS      := ./internal/sketch ./internal/selectivity ./internal/mapreduce ./internal/serve
MICRO_TIME_GATE ?= 4.0
bench-micro:
	@mkdir -p bench-out
	$(GO) test -run '^$$' -bench '^BenchmarkMicro' -benchmem -count 1 \
		$(MICRO_PKGS) | tee bench-out/BENCH_micro.txt
	$(GO) run ./cmd/benchrunner -micro -micro-in bench-out/BENCH_micro.txt \
		-bench-out bench-out \
		-micro-baseline testdata/bench_baseline/BENCH_micro.json \
		-micro-time-gate $(MICRO_TIME_GATE)

# Rebase the committed microbenchmark baseline from a fresh run on this
# machine (review the diff before committing).
bench-micro-rebase:
	@mkdir -p bench-out
	$(GO) test -run '^$$' -bench '^BenchmarkMicro' -benchmem -count 1 \
		$(MICRO_PKGS) | tee bench-out/BENCH_micro.txt
	$(GO) run ./cmd/benchrunner -micro -micro-in bench-out/BENCH_micro.txt \
		-bench-out bench-out \
		-micro-baseline testdata/bench_baseline/BENCH_micro.json -micro-rebase

# Regenerate the paper's tables and figures with full observability:
# machine-readable BENCH_<exp>.json per experiment, a Perfetto-loadable
# trace of the simulated runs (gzipped; Perfetto opens .json.gz
# directly), and a Prometheus metrics dump, all under bench-out/.
BENCH_QUERIES ?= 240
bench:
	@mkdir -p bench-out
	$(GO) run ./cmd/benchrunner -exp all -queries $(BENCH_QUERIES) \
		-bench-out bench-out -csv bench-out \
		-trace bench-out/runs.trace.json -metrics bench-out/metrics.prom
	gzip -f -9 bench-out/runs.trace.json

# Everything CI runs, in the same order.
ci: build lint lint-self test bench-alloc race fuzz-smoke stress cover-serve bench-micro bench-fault bench-learn bench-net bench-shard

clean:
	rm -rf $(BIN) bench-out obs-out lint-out
