GO      ?= go
BIN     := bin
SAQPVET := $(BIN)/saqpvet

.PHONY: all build test race lint fuzz-smoke bench ci clean

all: build

build:
	$(GO) build ./...

$(SAQPVET): $(shell find cmd/saqpvet internal/analysis -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	@mkdir -p $(BIN)
	$(GO) build -o $(SAQPVET) ./cmd/saqpvet

# Static analysis: the stock go vet suite plus the project's saqpvet
# analyzers (determinism, floatcmp, lockcheck, errdrop), run through the
# vet -vettool protocol so per-package results are cached like any other
# vet check.
lint: $(SAQPVET)
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath $(SAQPVET)) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A short native-fuzzing burst over the full compile→estimate→execute
# stack, plus the randomized estimator-vs-engine agreement test.
fuzz-smoke:
	$(GO) test -run TestRandomQueriesEstimatorVsEngine -count=1 ./internal/mapreduce
	$(GO) test -fuzz FuzzEngineQuery -fuzztime 10s -run '^$$' ./internal/mapreduce

# Regenerate the paper's tables and figures with full observability:
# machine-readable BENCH_<exp>.json per experiment, a Perfetto-loadable
# trace of the simulated runs (gzipped; Perfetto opens .json.gz
# directly), and a Prometheus metrics dump, all under bench-out/.
BENCH_QUERIES ?= 240
bench:
	@mkdir -p bench-out
	$(GO) run ./cmd/benchrunner -exp all -queries $(BENCH_QUERIES) \
		-bench-out bench-out -csv bench-out \
		-trace bench-out/runs.trace.json -metrics bench-out/metrics.prom
	gzip -f -9 bench-out/runs.trace.json

# Everything CI runs, in the same order.
ci: build lint test race fuzz-smoke

clean:
	rm -rf $(BIN) bench-out
