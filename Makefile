GO      ?= go
BIN     := bin
SAQPVET := $(BIN)/saqpvet

.PHONY: all build test race lint fuzz-smoke ci clean

all: build

build:
	$(GO) build ./...

$(SAQPVET): $(shell find cmd/saqpvet internal/analysis -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	@mkdir -p $(BIN)
	$(GO) build -o $(SAQPVET) ./cmd/saqpvet

# Static analysis: the stock go vet suite plus the project's saqpvet
# analyzers (determinism, floatcmp, lockcheck, errdrop), run through the
# vet -vettool protocol so per-package results are cached like any other
# vet check.
lint: $(SAQPVET)
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath $(SAQPVET)) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A short native-fuzzing burst over the full compile→estimate→execute
# stack, plus the randomized estimator-vs-engine agreement test.
fuzz-smoke:
	$(GO) test -run TestRandomQueriesEstimatorVsEngine -count=1 ./internal/mapreduce
	$(GO) test -fuzz FuzzEngineQuery -fuzztime 10s -run '^$$' ./internal/mapreduce

# Everything CI runs, in the same order.
ci: build lint test race fuzz-smoke

clean:
	rm -rf $(BIN)
