package saqp_test

// Benchmarks that regenerate every table and figure of the paper's
// evaluation (Section 5). Each bench reports the reproduced headline
// metrics via b.ReportMetric alongside wall-clock cost, so
// `go test -bench=. -benchmem` doubles as the experiment harness:
//
//	Table 2  -> BenchmarkTable2WorkloadComposition
//	Table 3  -> BenchmarkTable3JobAccuracy
//	Table 4  -> BenchmarkTable4MapTaskAccuracy
//	Table 5  -> BenchmarkTable5ReduceTaskAccuracy
//	Fig 1-2  -> BenchmarkFig1Fig2Motivation
//	Fig 5    -> BenchmarkFig5SelectivityWalkthrough
//	Fig 6    -> BenchmarkFig6JobScatter
//	Fig 7    -> BenchmarkFig7QueryPrediction
//	Fig 8    -> BenchmarkFig8Schedulers
//
// The Ablation* benches quantify the design choices DESIGN.md calls out:
// histogram resolution, prediction quality inside SWRD, and HCS queue
// structure.

import (
	"testing"

	"saqp"
	"saqp/internal/cluster"
	"saqp/internal/histogram"
	"saqp/internal/plan"
	"saqp/internal/predict"
	"saqp/internal/sched"
	"saqp/internal/selectivity"
	"saqp/internal/sim"
	"saqp/internal/trace"
	"saqp/internal/workload"
)

func BenchmarkTable2WorkloadComposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := workload.BuildWorkload("bing", workload.BingComposition(), 12, 1)
		if err != nil {
			b.Fatal(err)
		}
		if w.TotalQueries() != 100 {
			b.Fatal("wrong composition")
		}
	}
}

func BenchmarkTable3JobAccuracy(b *testing.B) {
	a, _ := artifacts(b)
	var res saqp.Table3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = saqp.ReproduceTable3(a)
	}
	b.ReportMetric(100*res.TestSetAvgError, "testErr%")
	for _, r := range res.TrainRows {
		if r.Op == "All" {
			b.ReportMetric(100*r.RSquared, "trainR2%")
		}
	}
}

func BenchmarkTable4MapTaskAccuracy(b *testing.B) {
	a, _ := artifacts(b)
	var rows []saqp.GroupAccuracy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = saqp.ReproduceTable4(a)
	}
	for _, r := range rows {
		if r.Op == "Together" {
			b.ReportMetric(100*r.RSquared, "R2%")
			b.ReportMetric(100*r.AvgError, "err%")
		}
	}
}

func BenchmarkTable5ReduceTaskAccuracy(b *testing.B) {
	a, _ := artifacts(b)
	var rows []saqp.GroupAccuracy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = saqp.ReproduceTable5(a)
	}
	for _, r := range rows {
		if r.Op == "Together" {
			b.ReportMetric(100*r.RSquared, "R2%")
			b.ReportMetric(100*r.AvgError, "err%")
		}
	}
}

func BenchmarkFig1Fig2Motivation(b *testing.B) {
	a, cfg := artifacts(b)
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := saqp.ReproduceFig2(saqp.SchedulerHCS, a, cfg)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, q := range res.Queries {
			if q.Name != "QB" && q.Slowdown > worst {
				worst = q.Slowdown
			}
		}
	}
	b.ReportMetric(worst, "smallQslowdown(x)")
}

func BenchmarkFig5SelectivityWalkthrough(b *testing.B) {
	var rows []saqp.Fig5Job
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = saqp.ReproduceFig5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[2].OutRows, "groupbyRows")
}

func BenchmarkFig6JobScatter(b *testing.B) {
	a, _ := artifacts(b)
	var pts []saqp.ScatterPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = saqp.ReproduceFig6(a)
	}
	b.ReportMetric(float64(len(pts)), "points")
}

func BenchmarkFig7QueryPrediction(b *testing.B) {
	a, cfg := artifacts(b)
	var res saqp.Fig7Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = saqp.ReproduceFig7(a, cfg, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.AvgError, "err%")
}

func BenchmarkFig8Schedulers(b *testing.B) {
	a, cfg := artifacts(b)
	for _, mix := range []string{"bing", "facebook"} {
		b.Run(mix, func(b *testing.B) {
			var gainHFS, gainHCS float64
			for i := 0; i < b.N; i++ {
				rs, err := saqp.ReproduceFig8(mix, a, cfg, 12)
				if err != nil {
					b.Fatal(err)
				}
				m := map[string]float64{}
				for _, r := range rs {
					m[r.Scheduler] = r.AvgResponseSec
				}
				gainHFS = 100 * (1 - m["SWRD"]/m["HFS"])
				gainHCS = 100 * (1 - m["SWRD"]/m["HCS"])
			}
			b.ReportMetric(gainHFS, "gainVsHFS%")
			b.ReportMetric(gainHCS, "gainVsHCS%")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

// BenchmarkAblationHistogramResolution quantifies how histogram bucket
// count affects join-size estimation on a many-to-many join of two
// Zipf-skewed fact tables (store_sales ⋈ web_sales on item): coarse
// buckets smear the hot keys and mis-estimate the blow-up; results are
// compared against a 4096-bucket reference.
func BenchmarkAblationHistogramResolution(b *testing.B) {
	compile := func() *plan.DAG {
		fw, err := saqp.NewFramework(saqp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		d, err := fw.Compile(`SELECT ss_quantity FROM store_sales JOIN web_sales ON ws_item_sk = ss_item_sk`)
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	d := compile()
	refCache := workload.NewCatalogCache(4096)
	ref, err := selectivity.NewEstimator(refCache.Get(1), selectivity.Config{}).EstimateQuery(d)
	if err != nil {
		b.Fatal(err)
	}
	refRows := ref.Jobs[0].OutRows
	for _, buckets := range []int{8, 64, 512} {
		b.Run(bucketsName(buckets), func(b *testing.B) {
			cache := workload.NewCatalogCache(buckets)
			var est *selectivity.QueryEstimate
			for i := 0; i < b.N; i++ {
				var err error
				est, err = selectivity.NewEstimator(cache.Get(1), selectivity.Config{}).EstimateQuery(d)
				if err != nil {
					b.Fatal(err)
				}
			}
			dev := 100 * absF(est.Jobs[0].OutRows-refRows) / refRows
			b.ReportMetric(dev, "devFromRef%")
		})
	}
}

func bucketsName(n int) string {
	switch n {
	case 8:
		return "buckets=8"
	case 64:
		return "buckets=64"
	default:
		return "buckets=512"
	}
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// BenchmarkAblationSWRDPredictor compares SWRD driven by the trained task
// model against SWRD driven by a constant (semantics-free) predictor: how
// much of SWRD's gain comes from prediction quality versus mere query-level
// grouping.
func BenchmarkAblationSWRDPredictor(b *testing.B) {
	a, cfg := artifacts(b)
	w, err := workload.BuildWorkload("bing", workload.BingComposition(), 12, cfg.Seed^0xfb8)
	if err != nil {
		b.Fatal(err)
	}
	oraCache := workload.NewCatalogCache(1024)
	type prepared struct {
		est *selectivity.QueryEstimate
		at  float64
	}
	var items []prepared
	for _, wi := range w.Items {
		d, err := plan.Compile(wi.Query)
		if err != nil {
			b.Fatal(err)
		}
		oracle, err := selectivity.NewEstimator(oraCache.Get(wi.SF), selectivity.Config{}).EstimateQuery(d)
		if err != nil {
			b.Fatal(err)
		}
		items = append(items, prepared{est: oracle, at: wi.ArrivalSec})
	}
	run := func(pred cluster.TaskTimePredictor) float64 {
		cm := trace.NewDefaultCostModel(cfg.Seed ^ 0xc0ffee)
		sim := cluster.New(cfg.Cluster, sched.SWRD{})
		for i, it := range items {
			cq := cluster.BuildQuery(string(rune('a'+i%26))+"-q", it.est, cm, pred)
			sim.Submit(cq, it.at)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		return res.AvgResponseTime()
	}
	var trained, constant float64
	for i := 0; i < b.N; i++ {
		trained = run(a.Tasks)
		constant = run(cluster.ConstantPredictor(10))
	}
	b.ReportMetric(trained, "trainedResp(s)")
	b.ReportMetric(constant, "constResp(s)")
}

// BenchmarkAblationHCSQueues measures how the Capacity Scheduler's queue
// count changes average response time on the Bing mix: a single queue
// exhibits the paper's head-of-line thrashing; more queues dilute it.
func BenchmarkAblationHCSQueues(b *testing.B) {
	a, cfg := artifacts(b)
	w, err := workload.BuildWorkload("bing", workload.BingComposition(), 12, cfg.Seed^0xfb8)
	if err != nil {
		b.Fatal(err)
	}
	oraCache := workload.NewCatalogCache(1024)
	type prepared struct {
		est *selectivity.QueryEstimate
		at  float64
	}
	var items []prepared
	for _, wi := range w.Items {
		d, err := plan.Compile(wi.Query)
		if err != nil {
			b.Fatal(err)
		}
		oracle, err := selectivity.NewEstimator(oraCache.Get(wi.SF), selectivity.Config{}).EstimateQuery(d)
		if err != nil {
			b.Fatal(err)
		}
		items = append(items, prepared{est: oracle, at: wi.ArrivalSec})
	}
	for _, queues := range []int{1, 4, 16} {
		name := map[int]string{1: "queues=1", 4: "queues=4", 16: "queues=16"}[queues]
		b.Run(name, func(b *testing.B) {
			var resp float64
			for i := 0; i < b.N; i++ {
				cm := trace.NewDefaultCostModel(cfg.Seed ^ 0xc0ffee)
				sim := cluster.New(cfg.Cluster, sched.HCS{Queues: queues})
				for j, it := range items {
					cq := cluster.BuildQuery(benchQueryName(j), it.est, cm, a.Tasks)
					sim.Submit(cq, it.at)
				}
				res, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				resp = res.AvgResponseTime()
			}
			b.ReportMetric(resp, "avgResp(s)")
		})
	}
}

func benchQueryName(i int) string {
	return "q" + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

// BenchmarkAblationHistogramType compares the paper's equi-width histograms
// against equi-depth histograms (same bucket budget) for point-equality
// selectivity on Zipf-skewed keys — quantifying the equi-width design
// choice of Section 3.1.
func BenchmarkAblationHistogramType(b *testing.B) {
	const n, card = 200000, 10000
	z := sim.NewZipf(sim.New(11), 1.4, 1, card)
	vals := make([]float64, n)
	counts := map[float64]int{}
	for i := range vals {
		vals[i] = float64(z.Uint64())
		counts[vals[i]]++
	}
	probes := []float64{0, 1, 2, 5, 10, 50, 100, 500, 1000, 5000}
	evalErr := func(sel func(float64) float64) float64 {
		var sum float64
		for _, x := range probes {
			truth := float64(counts[x]) / n
			sum += absF(sel(x) - truth)
		}
		return sum / float64(len(probes)) * 1e4 // basis points of row fraction
	}
	b.Run("equi-width", func(b *testing.B) {
		var h *histogram.Histogram
		for i := 0; i < b.N; i++ {
			h = histogram.Build(vals, 0, card, 64)
		}
		b.ReportMetric(evalErr(h.SelectivityEQ), "eqErr(bp)")
	})
	b.Run("equi-depth", func(b *testing.B) {
		var h *histogram.EquiDepth
		for i := 0; i < b.N; i++ {
			var err error
			h, err = histogram.BuildEquiDepth(vals, 64)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(evalErr(h.SelectivityEQ), "eqErr(bp)")
	})
}

// BenchmarkAblationPreemptiveReduce measures the effect of [30]-style
// preemptive reduce scheduling on the Bing mix under HFS — the policy most
// exposed to reduce-slot hoarding.
func BenchmarkAblationPreemptiveReduce(b *testing.B) {
	a, cfg := artifacts(b)
	w, err := workload.BuildWorkload("bing", workload.BingComposition(), 12, cfg.Seed^0xfb8)
	if err != nil {
		b.Fatal(err)
	}
	oraCache := workload.NewCatalogCache(1024)
	type prepared struct {
		est *selectivity.QueryEstimate
		at  float64
	}
	var items []prepared
	for _, wi := range w.Items {
		d, err := plan.Compile(wi.Query)
		if err != nil {
			b.Fatal(err)
		}
		oracle, err := selectivity.NewEstimator(oraCache.Get(wi.SF), selectivity.Config{}).EstimateQuery(d)
		if err != nil {
			b.Fatal(err)
		}
		items = append(items, prepared{est: oracle, at: wi.ArrivalSec})
	}
	for _, preempt := range []bool{false, true} {
		name := map[bool]string{false: "baseline", true: "preemptive"}[preempt]
		b.Run(name, func(b *testing.B) {
			var resp float64
			for i := 0; i < b.N; i++ {
				ccfg := cfg.Cluster
				ccfg.PreemptiveReduce = preempt
				cm := trace.NewDefaultCostModel(cfg.Seed ^ 0xc0ffee)
				simr := cluster.New(ccfg, sched.HFS{})
				for j, it := range items {
					cq := cluster.BuildQuery(benchQueryName(j), it.est, cm, a.Tasks)
					simr.Submit(cq, it.at)
				}
				res, err := simr.Run()
				if err != nil {
					b.Fatal(err)
				}
				resp = res.AvgResponseTime()
			}
			b.ReportMetric(resp, "avgResp(s)")
		})
	}
}

// BenchmarkAblationReduceSkew quantifies how much of the job-level (Eq. 8)
// prediction error comes from reduce-partition skew: the same corpus is
// built with hot-partition modelling on (physical) and off (idealised
// uniform reducers), and the Join rows of Table 3 are compared.
func BenchmarkAblationReduceSkew(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := map[bool]string{false: "skew-on", true: "skew-off"}[disable]
		b.Run(name, func(b *testing.B) {
			var joinR2, joinErr float64
			for i := 0; i < b.N; i++ {
				cfg := workload.DefaultCorpusConfig()
				cfg.NumQueries = 160
				cfg.Sizing = selectivity.Config{DisableReduceSkew: disable}
				c, err := workload.BuildCorpus(cfg)
				if err != nil {
					b.Fatal(err)
				}
				train, _ := c.Split(0.75)
				jm, err := predict.FitJobModel(train.JobSamples)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range jm.JobAccuracyByOperator(train.JobSamples) {
					if r.Op == "Join" {
						joinR2, joinErr = r.RSquared, r.AvgError
					}
				}
			}
			b.ReportMetric(100*joinR2, "joinR2%")
			b.ReportMetric(100*joinErr, "joinErr%")
		})
	}
}
