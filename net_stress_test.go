package saqp_test

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"saqp"
)

// TestServerNetworkStress hammers the TCP frontend with 64 real client
// connections replaying the TPC-H mix (run under `go test -race` via
// `make stress`). It asserts the wire layer's exactly-once contract:
// every submission a client sees accepted is completed and observed by
// exactly one successful WAIT, the engine's own counters agree with the
// client-side tally, a graceful drain loses nothing, and neither the
// frontend nor the engine leaks goroutines afterwards.
func TestServerNetworkStress(t *testing.T) {
	fw, err := saqp.NewFramework(saqp.Options{Observer: saqp.NewObserver(nil)})
	if err != nil {
		t.Fatal(err)
	}
	names := saqp.TPCHNames()
	mix := make([]string, len(names))
	for i, n := range names {
		if mix[i], err = saqp.TPCHSQL(n); err != nil {
			t.Fatal(err)
		}
	}

	before := runtime.NumGoroutine()
	srv, err := fw.NewServer(saqp.ServerOptions{Workers: 8, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := fw.NewNetServer(srv, saqp.NetOptions{
		Addr:     "127.0.0.1:0",
		MaxConns: 80, // headroom over the 64 stress connections
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		conns   = 64
		perConn = 4
		total   = conns * perConn
	)
	var (
		completed int64 // successful WAITs observed client-side
		cacheHits int64 // results flagged cache_hit on the wire
		wg        sync.WaitGroup
	)
	start := make(chan struct{})
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := saqp.DialNet(ns.Addr())
			if err != nil {
				t.Errorf("conn %d: dial: %v", g, err)
				return
			}
			defer cl.Close()
			<-start
			for i := 0; i < perConn; i++ {
				n := g*perConn + i
				// Seeds cycle with the mix so repeated queries share
				// SQL and ground-truth cost: cache hits are real hits.
				sql := mix[n%len(mix)]
				id, err := cl.Submit(sql, uint64(n%len(mix)))
				if err != nil {
					t.Errorf("conn %d: submit: %v", g, err)
					return
				}
				res, err := cl.Wait(id)
				if err != nil {
					t.Errorf("conn %d: wait %s: %v", g, id, err)
					return
				}
				if res.ID != id {
					t.Errorf("conn %d: WAIT %s returned result for %s", g, id, res.ID)
				}
				atomic.AddInt64(&completed, 1)
				if res.CacheHit {
					atomic.AddInt64(&cacheHits, 1)
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()

	// Engine accounting must match the client-side tally exactly: a
	// submission the wire acknowledged but the engine never completed
	// (or completed twice) is a lost or duplicated result.
	st := srv.Stats()
	if completed != total {
		t.Fatalf("client-observed completions = %d, want %d", completed, total)
	}
	if st.Completed != uint64(completed) {
		t.Fatalf("engine completions = %d, client-observed = %d (lost or duplicated results)",
			st.Completed, completed)
	}
	if st.Submitted != uint64(total) || st.Errors != 0 || st.Rejected != 0 || st.Canceled != 0 {
		t.Fatalf("engine accounting: submitted=%d errors=%d rejected=%d canceled=%d, want %d/0/0/0",
			st.Submitted, st.Errors, st.Rejected, st.Canceled, total)
	}
	if cacheHits == 0 {
		t.Fatalf("no cache hits across %d submissions of %d distinct queries", total, len(mix))
	}

	// A graceful drain with no in-flight work must complete promptly
	// and leave nothing running.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ns.Shutdown(ctx); err != nil {
		t.Fatalf("frontend drain: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before stress, %d after drain", before, runtime.NumGoroutine())
}
