package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"saqp"
)

// shardConfig parameterizes the sharded-serving benchmark.
type shardConfig struct {
	Queries     int    // submissions per throughput phase
	Concurrency int    // closed-loop submitter goroutines
	Shards      int    // primary/replica pairs in the sharded phase
	CacheSize   int    // per-engine plan/estimate cache entries
	Scheduler   string // pool scheduler name
	Seed        uint64
	FaultSeed   uint64 // seed of the failover phase's crash plan

	Baseline  string  // committed BENCH_shard.json to diff against; "" = no diff
	ScaleGate float64 // fail when scaling < gate * min(1, cores/shards); 0 disables
}

// shardReport is BENCH_shard.json: single-engine vs sharded throughput
// plus exactly-once accounting through a mid-run failover.
type shardReport struct {
	Experiment  string `json:"experiment"`
	Queries     int    `json:"queries"`
	Concurrency int    `json:"concurrency"`
	Shards      int    `json:"shards"`
	CacheSize   int    `json:"cache_size"`
	Scheduler   string `json:"scheduler"`
	Seed        uint64 `json:"seed"`
	Cores       int    `json:"cores"`

	SingleWallSeconds float64 `json:"single_wall_seconds"`
	SingleQPS         float64 `json:"single_qps"`
	ShardWallSeconds  float64 `json:"shard_wall_seconds"`
	ShardQPS          float64 `json:"shard_qps"`
	Scaling           float64 `json:"scaling"`
	ScaleGate         float64 `json:"scale_gate"`
	DeratedGate       float64 `json:"derated_gate"`

	FailoverQueries  int   `json:"failover_queries"`
	Failovers        int   `json:"failovers"`
	Lost             int64 `json:"lost_completions"`
	ClientErrors     int64 `json:"client_errors"`
	EngineSubmitted  int64 `json:"engine_submitted"`
	EngineCompleted  int64 `json:"engine_completed"`
	SentinelEventLen int   `json:"sentinel_events"`
}

// shardMeasure drives one warmup pass plus two measured rounds and
// keeps the faster round — min-time measurement, so one slow round of
// scheduler or GC noise cannot sink the scaling ratio.
func shardMeasure(queries, concurrency int, seed uint64, mix []string,
	submit func(ctx context.Context, sql string, seed uint64) (string, error)) (wall float64, done, cerrs int64) {
	shardDrive(2*len(mix), concurrency, seed, mix, submit)
	for round := 0; round < 2; round++ {
		w, d, e := shardDrive(queries, concurrency, seed, mix, submit)
		cerrs += e
		if round == 0 || w < wall {
			wall, done = w, d
		}
	}
	return wall, done, cerrs
}

// shardDrive replays the TPC-H mix closed-loop through submit and
// returns (wall seconds, client completions, client errors).
func shardDrive(queries, concurrency int, seed uint64, mix []string,
	submit func(ctx context.Context, sql string, seed uint64) (string, error)) (float64, int64, int64) {
	arrivals := make(chan int, queries)
	for i := 0; i < queries; i++ {
		arrivals <- i
	}
	close(arrivals)
	var done, cerrs int64
	begin := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := range arrivals {
				sql := mix[i%len(mix)]
				if _, err := submit(ctx, sql, seed+uint64(i%len(mix))); err != nil {
					atomic.AddInt64(&cerrs, 1)
					continue
				}
				atomic.AddInt64(&done, 1)
			}
		}()
	}
	wg.Wait()
	return time.Since(begin).Seconds(), done, cerrs
}

// shardBench measures what the coordinator buys: phase 1 serves the
// TPC-H mix on one single-worker engine, phase 2 on a Shards-wide
// cluster of single-worker engines behind fingerprint routing, and
// phase 3 replays through a deterministic mid-run primary crash to
// prove exactly-once completion across a sentinel failover. The
// scaling gate is derated by min(1, cores/shards) so a single-core CI
// machine gates on routing overhead rather than parallelism it does
// not have.
func shardBench(sc shardConfig, benchDir string) error {
	fmt.Printf("Building framework and training models for the shard benchmark...\n")
	fw, err := saqp.NewFramework(saqp.Options{Observer: saqp.NewObserver(nil)})
	if err != nil {
		return err
	}
	if err := fw.TrainDefault(); err != nil {
		return err
	}
	names := saqp.TPCHNames()
	mix := make([]string, len(names))
	for i, n := range names {
		sql, err := saqp.TPCHSQL(n)
		if err != nil {
			return err
		}
		mix[i] = sql
	}

	// Phase 1: single engine, one worker — the per-shard building block.
	// Online learning is on to match the cluster phases, where every
	// instance feeds a model replica; without it the single engine would
	// skip the RLS feedback work the shards all pay.
	srv, err := fw.NewServer(saqp.ServerOptions{
		Workers: 1, CacheSize: sc.CacheSize, Scheduler: sc.Scheduler, OnlineLearning: true,
	})
	if err != nil {
		return err
	}
	singleSubmit := func(ctx context.Context, sql string, seed uint64) (string, error) {
		t, err := srv.Submit(ctx, sql, seed)
		if err != nil {
			return "", err
		}
		res, err := t.Wait(ctx)
		return res.ID, err
	}
	fmt.Printf("phase 1: %d queries, single engine (1 worker, %s)...\n", sc.Queries, sc.Scheduler)
	singleWall, singleDone, singleErrs := shardMeasure(sc.Queries, sc.Concurrency, sc.Seed, mix, singleSubmit)
	if err := srv.Close(); err != nil {
		return err
	}
	if singleErrs != 0 || singleDone != int64(sc.Queries) {
		return fmt.Errorf("shard: single-engine phase incomplete: done=%d/%d errors=%d",
			singleDone, sc.Queries, singleErrs)
	}

	// Phase 2: the same load across Shards single-worker engines behind
	// the fingerprint-routing coordinator.
	cs, err := fw.NewClusterServer(saqp.ClusterOptions{
		Shards: sc.Shards, Workers: 1, CacheSize: sc.CacheSize, Scheduler: sc.Scheduler,
	})
	if err != nil {
		return err
	}
	fmt.Printf("phase 2: %d queries across %d shards (1 worker each)...\n", sc.Queries, sc.Shards)
	clusterSubmit := func(ctx context.Context, sql string, seed uint64) (string, error) {
		p, err := cs.Submit(ctx, sql, seed)
		if err != nil {
			return "", err
		}
		res, err := p.Wait(ctx)
		return res.ID, err
	}
	shardWall, shardDone, shardErrs := shardMeasure(sc.Queries, sc.Concurrency, sc.Seed, mix, clusterSubmit)
	if err := cs.Close(); err != nil {
		return err
	}
	if shardErrs != 0 || shardDone != int64(sc.Queries) {
		return fmt.Errorf("shard: sharded phase incomplete: done=%d/%d errors=%d",
			shardDone, sc.Queries, shardErrs)
	}

	// Phase 3: exactly-once through a failover. A deterministic plan
	// crashes shard 0's primary early in the run while a fast wall-clock
	// ticker drives the sentinel; submissions routed to the dead primary
	// park on the promotion and must all complete.
	foQueries := sc.Queries / 2
	if foQueries < len(mix) {
		foQueries = len(mix)
	}
	plan := saqp.NewFaultPlan(saqp.FaultSpec{
		Seed: sc.FaultSeed, Nodes: 1, HorizonSec: 10, CrashProb: 1, CrashDowntimeSec: 6,
	})
	fcs, err := fw.NewClusterServer(saqp.ClusterOptions{
		Shards: sc.Shards, Workers: 1, CacheSize: sc.CacheSize, Scheduler: sc.Scheduler,
		FaultPlan: plan, MissThreshold: 2, SentinelSeed: sc.FaultSeed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("phase 3: %d queries through a mid-run shard-0 crash + sentinel failover...\n", foQueries)
	tickStop := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tickStop:
				return
			case <-tick.C:
				fcs.Tick()
			}
		}
	}()
	foSubmit := func(ctx context.Context, sql string, seed uint64) (string, error) {
		p, err := fcs.Submit(ctx, sql, seed)
		if err != nil {
			return "", err
		}
		res, err := p.Wait(ctx)
		return res.ID, err
	}
	_, foDone, foErrs := shardDrive(foQueries, sc.Concurrency, sc.Seed, mix, foSubmit)
	// Keep ticking until the crash window has fully played out, so the
	// log always records the failover even on a fast machine.
	for fcs.Status().Epoch == 0 && fcs.Status().Tick < 60 {
		fcs.Tick()
	}
	close(tickStop)
	tickWG.Wait()
	failovers := 0
	for _, e := range fcs.Events() {
		if e.Kind == saqp.ClusterEventFailover {
			failovers++
		}
	}
	fst := fcs.Stats()
	eventLen := len(fcs.Events())
	if err := fcs.Close(); err != nil {
		return err
	}
	lost := int64(fst.Submitted) - foDone

	cores := runtime.GOMAXPROCS(0)
	derated := sc.ScaleGate * minf(1, float64(cores)/float64(sc.Shards))
	r := shardReport{
		Experiment:  "shard",
		Queries:     sc.Queries,
		Concurrency: sc.Concurrency,
		Shards:      sc.Shards,
		CacheSize:   sc.CacheSize,
		Scheduler:   sc.Scheduler,
		Seed:        sc.Seed,
		Cores:       cores,

		SingleWallSeconds: singleWall,
		SingleQPS:         float64(singleDone) / singleWall,
		ShardWallSeconds:  shardWall,
		ShardQPS:          float64(shardDone) / shardWall,
		ScaleGate:         sc.ScaleGate,
		DeratedGate:       derated,

		FailoverQueries:  foQueries,
		Failovers:        failovers,
		Lost:             lost,
		ClientErrors:     foErrs,
		EngineSubmitted:  int64(fst.Submitted),
		EngineCompleted:  int64(fst.Completed),
		SentinelEventLen: eventLen,
	}
	if r.SingleQPS > 0 {
		r.Scaling = r.ShardQPS / r.SingleQPS
	}

	fmt.Printf("single engine: %.1f q/s  |  %d shards: %.1f q/s  |  scaling %.2fx (gate %.2fx on %d core(s))\n",
		r.SingleQPS, sc.Shards, r.ShardQPS, r.Scaling, derated, cores)
	fmt.Printf("failover phase: %d queries, %d failover(s), lost=%d, engine submitted=%d completed=%d\n",
		foQueries, failovers, lost, fst.Submitted, fst.Completed)

	if benchDir != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(benchDir, "BENCH_shard.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	if sc.Baseline != "" {
		if err := shardBaselineDiff(sc.Baseline, r); err != nil {
			return err
		}
	}

	// CI gates. Exactly-once through the failover is unconditional;
	// scaling is gated against the core-derated floor.
	if lost != 0 {
		return fmt.Errorf("shard: lost completions through failover: %d", lost)
	}
	if foErrs != 0 || foDone != int64(foQueries) {
		return fmt.Errorf("shard: failover phase incomplete: done=%d/%d errors=%d", foDone, foQueries, foErrs)
	}
	if failovers == 0 {
		return fmt.Errorf("shard: crash plan never produced a failover")
	}
	if int64(fst.Submitted) != int64(fst.Completed) {
		return fmt.Errorf("shard: engine accounting mismatch: submitted=%d completed=%d",
			fst.Submitted, fst.Completed)
	}
	if sc.ScaleGate > 0 && r.Scaling < derated {
		return fmt.Errorf("shard: scaling %.2fx below derated gate %.2fx (%d shards on %d core(s))",
			r.Scaling, derated, sc.Shards, cores)
	}
	return nil
}

// shardBaselineDiff prints this run against a committed
// BENCH_shard.json. Wall-clock throughput varies across machines, so
// the diff is informational; the hard gates are computed from the
// current run alone.
func shardBaselineDiff(path string, r shardReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("shard: reading baseline: %w", err)
	}
	var base shardReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("shard: parsing baseline %s: %w", path, err)
	}
	fmt.Printf("delta vs baseline %s (recorded on %d core(s)):\n", path, base.Cores)
	row := func(name string, cur, old float64) {
		d := 0.0
		if old != 0 {
			d = 100 * (cur - old) / old
		}
		fmt.Printf("  %-18s %10.2f  baseline %10.2f  (%+.1f%%)\n", name, cur, old, d)
	}
	row("single q/s", r.SingleQPS, base.SingleQPS)
	row("sharded q/s", r.ShardQPS, base.ShardQPS)
	row("scaling x", r.Scaling, base.Scaling)
	return nil
}

// minf is math.Min without the import.
func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
