package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"saqp"
)

// learnConfig parameterizes the online-learning convergence benchmark.
type learnConfig struct {
	Queries    int     // replayed corpus size
	Window     int     // promotion error-window length
	MinSamples int     // challenger warm-up before the first promotion
	Margin     float64 // challenger must beat champion by this fraction
	PointEvery int     // job-sample stride between convergence points
	Gate       float64 // CI gate: final challenger err ≤ batch err × Gate; 0 disables
	Seed       uint64  // corpus seed
}

// learnReport is BENCH_learn.json: the convergence replay's outcome plus
// the invocation's parameters. Every field except WallSeconds is
// deterministic in the seed.
type learnReport struct {
	Experiment string  `json:"experiment"`
	Seed       uint64  `json:"seed"`
	Window     int     `json:"window"`
	MinSamples int     `json:"min_samples"`
	Margin     float64 `json:"margin"`
	Gate       float64 `json:"gate"`

	Result *saqp.LearnReplayResult `json:"result"`

	WallSeconds float64 `json:"wall_seconds"`
}

// learnBench replays a seeded corpus through a cold model-lifecycle
// registry, prints the convergence curve and promotion sequence, writes
// BENCH_learn.json, and enforces the challenger-vs-batch accuracy gate.
func learnBench(lc learnConfig, benchDir, csvDir string) error {
	fmt.Printf("Learning replay: %d queries (seed %d), window %d, min-samples %d, margin %.2f\n",
		lc.Queries, lc.Seed, lc.Window, lc.MinSamples, lc.Margin)

	begin := time.Now()
	r, err := saqp.ReproduceLearningReplay(saqp.LearnReplayConfig{
		Queries:       lc.Queries,
		Seed:          lc.Seed,
		Window:        lc.Window,
		MinSamples:    lc.MinSamples,
		PromoteMargin: lc.Margin,
		PointEvery:    lc.PointEvery,
	})
	if err != nil {
		return err
	}
	wall := time.Since(begin).Seconds()

	header("Learning Replay: online RLS convergence and champion promotion")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "queries\t%d (%d job samples, %d task samples)\n", r.Queries, r.JobSamples, r.TaskSamples)
	fmt.Fprintf(w, "promotions\t%d (final model version %d)\n", len(r.Promotions), r.FinalVersion)
	for _, p := range r.Promotions {
		champ := "cold start"
		if p.ChampionErr >= 0 {
			champ = fmt.Sprintf("champion %.2f%%", 100*p.ChampionErr)
		}
		fmt.Fprintf(w, "  v%d\tat %d job samples (%s → challenger %.2f%%)\n",
			p.Version, p.AtJobSamples, champ, 100*p.ChallengerErr)
	}
	fmt.Fprintf(w, "final challenger err\t%.2f%% over the full stream\n", 100*r.FinalChallengerErr)
	fmt.Fprintf(w, "batch baseline err\t%.2f%% (same samples, offline fit)\n", 100*r.BatchErr)
	w.Flush()

	fmt.Println("\njob samples  version  challenger err over full stream")
	rows := [][]string{{"job_samples", "version", "challenger_err"}}
	for _, p := range r.Points {
		fmt.Printf("%11d  %7d  %.4f\n", p.JobSamples, p.Version, p.ChallengerErr)
		rows = append(rows, []string{fmt.Sprint(p.JobSamples), fmt.Sprint(p.Version), f2(p.ChallengerErr)})
	}
	if err := writeCSV(csvDir, "learn", rows); err != nil {
		return err
	}

	if benchDir != "" {
		rep := learnReport{
			Experiment: "learn",
			Seed:       lc.Seed,
			Window:     lc.Window,
			MinSamples: lc.MinSamples,
			Margin:     lc.Margin,
			Gate:       lc.Gate,
			Result:     r,

			WallSeconds: wall,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(benchDir, "BENCH_learn.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nWrote %s\n", path)
	}

	if lc.Gate > 0 && r.FinalChallengerErr > r.BatchErr*lc.Gate {
		return fmt.Errorf("challenger error %.4f above gate %.4f (batch %.4f × %.2f)",
			r.FinalChallengerErr, r.BatchErr*lc.Gate, r.BatchErr, lc.Gate)
	}
	return nil
}
