package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"saqp"
	"saqp/internal/catalog"
	"saqp/internal/dataset"
	"saqp/internal/mapreduce"
	"saqp/internal/obs"
	"saqp/internal/plan"
	"saqp/internal/query"
	"saqp/internal/selectivity"
)

// microConfig parameterizes the microbenchmark + sketch-accuracy gate.
type microConfig struct {
	Input    string  // `go test -bench` text output to parse ("" = skip benchmarks)
	Baseline string  // committed BENCH_micro.json to gate against ("" = no gate)
	Rebase   bool    // rewrite the baseline from this run instead of gating
	TimeGate float64 // fail when ns/op exceeds baseline ns/op times this factor (0 disables)
	HLLGate  float64 // fail when any column's HLL distinct estimate misses exact by more than this relative error
	Seed     uint64  // dataset seed for the accuracy replay
	SF       float64 // scale factor for the accuracy replay
}

// microBench is one parsed benchmark line.
type microBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// microReport is BENCH_micro.json: benchstat-derived per-op costs plus
// the sketch-accuracy replay (HLL vs exact distincts, exact-vs-sketch
// estimator divergence, and the Bloom-pruned shuffle equivalence).
type microReport struct {
	Experiment string  `json:"experiment"`
	Seed       uint64  `json:"seed"`
	SF         float64 `json:"sf"`

	Benchmarks []microBench `json:"benchmarks"`

	HLLColumns   int     `json:"hll_columns"`
	HLLMaxRelErr float64 `json:"hll_max_rel_err"`

	EstimatorJobs       int     `json:"estimator_jobs"`
	EstimatorSketchCols int     `json:"estimator_sketch_cols"`
	MaxISDiff           float64 `json:"estimator_max_is_diff"`
	MaxFSDiff           float64 `json:"estimator_max_fs_diff"`
	MaxOutRowsRelErr    float64 `json:"estimator_max_outrows_rel_err"`

	BloomQueries    int     `json:"bloom_queries"`
	BloomProbed     int64   `json:"bloom_probed"`
	BloomPruned     int64   `json:"bloom_pruned"`
	BloomPruneShare float64 `json:"bloom_prune_share"`
	BloomMismatches int     `json:"bloom_mismatches"`
}

// parseBenchText extracts Benchmark* result lines from `go test -bench
// -benchmem` output: name, iteration count, then value/unit pairs.
func parseBenchText(data string) []microBench {
	var out []microBench
	for _, line := range strings.Split(data, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Strip the -<GOMAXPROCS> suffix so baselines survive core-count
		// changes between machines.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		b := microBench{Name: name}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			}
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// microHLLAccuracy collects exact statistics (which also build sketches)
// over TPC-H and returns the worst relative error of the HLL distinct
// estimates, with the column count inspected.
func microHLLAccuracy(cat *catalog.Catalog) (int, float64) {
	cols := 0
	worst := 0.0
	for _, t := range cat.Tables {
		for _, cs := range t.Columns {
			if cs.Sketch == nil || cs.Sketch.HLL == nil || cs.Distinct <= 0 {
				continue
			}
			cols++
			rel := math.Abs(cs.Sketch.HLL.Estimate()-float64(cs.Distinct)) / float64(cs.Distinct)
			if rel > worst {
				worst = rel
			}
		}
	}
	return cols, worst
}

// compileTPCH compiles every canonical TPC-H query.
func compileTPCH() (map[string]*plan.DAG, error) {
	dags := make(map[string]*plan.DAG)
	for _, name := range saqp.TPCHNames() {
		sql, err := saqp.TPCHSQL(name)
		if err != nil {
			return nil, err
		}
		q, err := query.Parse(sql)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if err := query.Resolve(q, dataset.AllSchemas()); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		d, err := plan.Compile(q)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		dags[name] = d
	}
	return dags, nil
}

// microEstimatorDivergence prices every TPC-H plan under the exact and
// sketch tiers of the same collected catalog and reports the worst
// absolute IS/FS differences and the worst join/group output-cardinality
// relative error.
func microEstimatorDivergence(cat *catalog.Catalog, dags map[string]*plan.DAG, r *microReport) error {
	exact := selectivity.NewEstimator(cat, selectivity.Config{})
	sk := selectivity.NewEstimator(cat, selectivity.Config{Stats: selectivity.StatsSketch})
	names := make([]string, 0, len(dags))
	for n := range dags {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		qeE, err := exact.EstimateQuery(dags[name])
		if err != nil {
			return fmt.Errorf("%s exact: %w", name, err)
		}
		qeS, err := sk.EstimateQuery(dags[name])
		if err != nil {
			return fmt.Errorf("%s sketch: %w", name, err)
		}
		r.EstimatorSketchCols += qeS.SketchCols
		for i, je := range qeS.Jobs {
			ex := qeE.Jobs[i]
			r.EstimatorJobs++
			r.MaxISDiff = math.Max(r.MaxISDiff, math.Abs(je.IS-ex.IS))
			r.MaxFSDiff = math.Max(r.MaxFSDiff, math.Abs(je.FS-ex.FS))
			if ex.OutRows > 0 {
				rel := math.Abs(je.OutRows-ex.OutRows) / ex.OutRows
				r.MaxOutRowsRelErr = math.Max(r.MaxOutRowsRelErr, rel)
			}
		}
	}
	return nil
}

// microFrameEqual reports whether two result frames match exactly.
func microFrameEqual(a, b *mapreduce.Frame) bool {
	if len(a.Cols) != len(b.Cols) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !a.Rows[i][j].Equal(b.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// microBloomReplay runs every TPC-H query through the engine with Bloom
// semi-join pruning off and on. Any output divergence is a false
// negative (a matching tuple the filter dropped) and counts as a
// mismatch; probe/prune volumes aggregate into the report.
func microBloomReplay(cfg microConfig, dags map[string]*plan.DAG, r *microReport) error {
	reg := obs.NewRegistry()
	base := mapreduce.New(mapreduce.Config{BlockSize: 64 << 10, NumReducers: 4})
	pruned := mapreduce.New(mapreduce.Config{
		BlockSize: 64 << 10, NumReducers: 4,
		BloomPrune: true, Observer: &obs.Observer{Metrics: reg},
	})
	for _, s := range dataset.TPCH() {
		rel := dataset.Generate(s, cfg.SF, cfg.Seed)
		base.Register(rel)
		pruned.Register(rel)
	}
	names := make([]string, 0, len(dags))
	for n := range dags {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		want, err := base.RunQuery(dags[name])
		if err != nil {
			return fmt.Errorf("%s exact: %w", name, err)
		}
		got, err := pruned.RunQuery(dags[name])
		if err != nil {
			return fmt.Errorf("%s pruned: %w", name, err)
		}
		r.BloomQueries++
		if !microFrameEqual(got.Final, want.Final) {
			r.BloomMismatches++
			fmt.Fprintf(os.Stderr, "micro: %s: pruned output diverged (false negative)\n", name)
		}
		for _, s := range got.Stats {
			r.BloomProbed += s.BloomProbed
			r.BloomPruned += s.BloomPruned
		}
	}
	if r.BloomProbed > 0 {
		r.BloomPruneShare = float64(r.BloomPruned) / float64(r.BloomProbed)
	}
	snap := reg.Snapshot()
	if int64(snap.Counters[obs.MSketchBloomProbes]) != r.BloomProbed {
		return fmt.Errorf("observer probe counter %v != engine stats %d",
			snap.Counters[obs.MSketchBloomProbes], r.BloomProbed)
	}
	return nil
}

// microGate compares this run against the committed baseline: allocs/op
// may never regress (hard), ns/op may drift up to TimeGate× (machine
// variance), and every baseline benchmark must still exist.
func microGate(cfg microConfig, r *microReport) error {
	data, err := os.ReadFile(cfg.Baseline)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base microReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline: %w", err)
	}
	cur := make(map[string]microBench, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		cur[b.Name] = b
	}
	var failures []string
	for _, bb := range base.Benchmarks {
		b, ok := cur[bb.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but not in this run", bb.Name))
			continue
		}
		// 5% relative slack absorbs per-iteration amortization noise
		// while keeping zero-alloc benchmarks strict: 0 + 0/20 = 0.
		if b.AllocsPerOp > bb.AllocsPerOp+bb.AllocsPerOp/20 {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, baseline %d (allocation regression)",
				b.Name, b.AllocsPerOp, bb.AllocsPerOp))
		}
		if cfg.TimeGate > 0 && bb.NsPerOp > 0 && b.NsPerOp > bb.NsPerOp*cfg.TimeGate {
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op exceeds baseline %.1f x %.1f",
				b.Name, b.NsPerOp, bb.NsPerOp, cfg.TimeGate))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("baseline gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// microBench runs the full micro gate: parse benchmark output, replay
// the sketch-accuracy checks, write BENCH_micro.json, and enforce the
// committed baseline (or rebase it).
func runMicroBench(cfg microConfig, benchDir string) error {
	r := &microReport{Experiment: "micro", Seed: cfg.Seed, SF: cfg.SF}
	if cfg.Input != "" {
		data, err := os.ReadFile(cfg.Input)
		if err != nil {
			return fmt.Errorf("reading bench output: %w", err)
		}
		r.Benchmarks = parseBenchText(string(data))
		if len(r.Benchmarks) == 0 {
			return fmt.Errorf("no Benchmark lines found in %s", cfg.Input)
		}
	}

	cat := catalog.CollectAll(dataset.TPCH(), cfg.SF, cfg.Seed, catalog.DefaultBuckets)
	r.HLLColumns, r.HLLMaxRelErr = microHLLAccuracy(cat)

	dags, err := compileTPCH()
	if err != nil {
		return err
	}
	if err := microEstimatorDivergence(cat, dags, r); err != nil {
		return err
	}
	if err := microBloomReplay(cfg, dags, r); err != nil {
		return err
	}

	fmt.Printf("micro: %d benchmarks, HLL max rel err %.4f over %d columns\n",
		len(r.Benchmarks), r.HLLMaxRelErr, r.HLLColumns)
	fmt.Printf("micro: estimator divergence over %d jobs: |ΔIS| ≤ %.4f |ΔFS| ≤ %.4f, out-rows rel ≤ %.4f (%d sketch cols)\n",
		r.EstimatorJobs, r.MaxISDiff, r.MaxFSDiff, r.MaxOutRowsRelErr, r.EstimatorSketchCols)
	fmt.Printf("micro: bloom replay over %d queries: %d probed, %d pruned (%.1f%%), %d mismatches\n",
		r.BloomQueries, r.BloomProbed, r.BloomPruned, 100*r.BloomPruneShare, r.BloomMismatches)

	if benchDir != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(benchDir, "BENCH_micro.json"), append(data, '\n'), 0o644); err != nil {
			return err
		}
	}

	// Accuracy gates are unconditional: they depend only on the seed and
	// scale factor, not on machine speed.
	if cfg.HLLGate > 0 && r.HLLMaxRelErr > cfg.HLLGate {
		return fmt.Errorf("HLL distinct estimates drifted: max rel err %.4f > %.4f", r.HLLMaxRelErr, cfg.HLLGate)
	}
	if r.BloomMismatches > 0 {
		return fmt.Errorf("bloom pruning produced %d false-negative result divergences", r.BloomMismatches)
	}

	if cfg.Rebase {
		if cfg.Baseline == "" {
			return fmt.Errorf("-micro-rebase needs -micro-baseline")
		}
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.Baseline, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("micro: baseline rebased to %s\n", cfg.Baseline)
		return nil
	}
	if cfg.Baseline != "" {
		if err := microGate(cfg, r); err != nil {
			return err
		}
		fmt.Printf("micro: baseline gate passed (%s)\n", cfg.Baseline)
	}
	return nil
}
