// Command benchrunner regenerates every table and figure of the paper's
// evaluation (Section 5) from the reproduction's simulated substrate and
// prints them in the paper's row/series layout.
//
// Usage:
//
//	benchrunner -exp all
//	benchrunner -exp table3 -queries 1000
//	benchrunner -exp fig8 -gap 12
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"

	"saqp"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table2|table3|table4|table5|fig2|fig5|fig6|fig7|fig8|all")
		queries  = flag.Int("queries", 240, "corpus size (paper: 1000)")
		gap      = flag.Float64("gap", 12, "mean Poisson inter-arrival gap in seconds for fig8")
		seed     = flag.Uint64("seed", 2018, "experiment seed")
		csvDir   = flag.String("csv", "", "also write each experiment's data as CSV into this directory")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the simulated runs (fig2/fig8) to this file")
		promOut  = flag.String("metrics", "", "write Prometheus text-format metrics to this file")
		benchDir = flag.String("bench-out", "", "write machine-readable BENCH_<exp>.json results into this directory")

		faultMode    = flag.Bool("faults", false, "run the fault-injection replay benchmark instead of the paper experiments")
		faultSeed    = flag.Uint64("fault-seed", 2018, "faults: seed of the injected fault plan")
		faultRounds  = flag.Int("fault-rounds", 3, "faults: copies of the canonical TPC-H set replayed")
		faultGap     = flag.Float64("fault-gap", 20, "faults: mean Poisson inter-arrival gap in seconds")
		faultMinComp = flag.Float64("fault-min-completion", 0, "faults: exit nonzero when the completion rate drops below this fraction (CI gate; 0 disables)")
		faultSched   = flag.String("fault-sched", "SWRD", "faults: scheduler for both the clean and faulted replay")

		learnMode       = flag.Bool("learn", false, "run the online-learning convergence benchmark instead of the paper experiments")
		learnQueries    = flag.Int("learn-queries", 120, "learn: replayed corpus size")
		learnWindow     = flag.Int("learn-window", 100, "learn: promotion error-window length")
		learnMinSamples = flag.Int("learn-min-samples", 50, "learn: challenger warm-up before the first promotion")
		learnMargin     = flag.Float64("learn-margin", 0.05, "learn: promotion margin (challenger must beat champion by this fraction)")
		learnPointEvery = flag.Int("learn-point-every", 25, "learn: job-sample stride between convergence points")
		learnGate       = flag.Float64("learn-gate", 1.10, "learn: exit nonzero when final challenger err exceeds batch err times this factor (CI gate; 0 disables)")

		serveMode     = flag.Bool("serve", false, "run the concurrent serving benchmark instead of the paper experiments")
		concurrency   = flag.Int("concurrency", 16, "serve: submitter goroutines")
		qps           = flag.Float64("qps", 0, "serve: open-loop arrival rate in queries/sec (0 = closed-loop)")
		serveQueries  = flag.Int("serve-queries", 1000, "serve: total submissions")
		serveWorkers  = flag.Int("serve-workers", 4, "serve: simulator pool size")
		serveCache    = flag.Int("serve-cache", 256, "serve: plan/estimate cache entries")
		serveSched    = flag.String("serve-sched", "SWRD", "serve: pool scheduler (HCS|HFS|SWRD)")
		serveTimeout  = flag.Duration("serve-timeout", 0, "serve: per-query wall-clock timeout (0 = none)")
		serveAdmin    = flag.String("admin", "", "serve: host the live introspection endpoint (/metrics /spans /slo /debug/pprof) on this address for the benchmark's duration")
		serveLinger   = flag.Duration("admin-linger", 0, "serve: keep the server and admin endpoint alive this long after the benchmark finishes (SIGINT/SIGTERM ends it early)")
		serveSpans    = flag.String("spans", "", "serve: record request span trees and write them as JSON to this file")
		serveBaseline = flag.String("baseline", "", "serve: print a delta of this run against a committed BENCH_serve.json baseline")

		shardMode      = flag.Bool("shard", false, "run the sharded-serving benchmark (single engine vs fingerprint-routed shard cluster, plus exactly-once through a sentinel failover) instead of the paper experiments")
		shardQueries   = flag.Int("shard-queries", 4000, "shard: submissions per throughput phase")
		shardShards    = flag.Int("shard-shards", 4, "shard: primary/replica pairs in the sharded phase")
		shardConc      = flag.Int("shard-concurrency", 16, "shard: closed-loop submitter goroutines")
		shardCache     = flag.Int("shard-cache", 64, "shard: per-engine plan/estimate cache entries")
		shardSched     = flag.String("shard-sched", "SWRD", "shard: pool scheduler (HCS|HFS|SWRD)")
		shardBaseline  = flag.String("shard-baseline", "", "shard: print a delta of this run against a committed BENCH_shard.json baseline")
		shardScaleGate = flag.Float64("shard-scale-gate", 2.5, "shard: fail when sharded/single throughput scaling falls below this factor derated by min(1, cores/shards) (0 disables)")

		microMode     = flag.Bool("micro", false, "run the microbenchmark + sketch-accuracy gate instead of the paper experiments")
		microIn       = flag.String("micro-in", "", "micro: parse this `go test -bench` text output (\"\" skips the benchmark gate)")
		microBaseline = flag.String("micro-baseline", "", "micro: gate this run against a committed BENCH_micro.json baseline")
		microRebase   = flag.Bool("micro-rebase", false, "micro: rewrite -micro-baseline from this run instead of gating")
		microTimeGate = flag.Float64("micro-time-gate", 4.0, "micro: fail when ns/op exceeds the baseline times this factor (0 disables; allocs/op always gates hard)")
		microHLLGate  = flag.Float64("micro-hll-gate", 0.05, "micro: fail when an HLL distinct estimate misses exact by more than this relative error (0 disables)")
		microSF       = flag.Float64("micro-sf", 0.01, "micro: TPC-H scale factor for the accuracy replay")

		netMode     = flag.Bool("net", false, "run the network-frontend benchmark (real TCP sockets, RESP-style protocol) instead of the paper experiments")
		netConns    = flag.Int("net-conns", 8, "net: client connections")
		netQueries  = flag.Int("net-queries", 400, "net: total submissions across all connections")
		netBaseline = flag.String("net-baseline", "", "net: gate this run against a committed BENCH_net.json baseline")
		netP99Gate  = flag.Float64("net-p99-gate", 1.5, "net: fail when p99 exceeds the baseline's p99 times this factor (0 disables; needs -net-baseline)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"benchrunner regenerates the paper's evaluation artifacts (Tables 2-5,\n"+
				"Figures 2 and 5-8) from the simulated substrate, and hosts the fault,\n"+
				"online-learning and concurrent-serving benchmarks.\n\n"+
				"usage: benchrunner [flags]\n\n"+
				"examples:\n"+
				"  benchrunner -exp all\n"+
				"  benchrunner -exp table3 -queries 1000\n"+
				"  benchrunner -serve -concurrency 32 -qps 50\n"+
				"  benchrunner -net -net-conns 16 -net-queries 800\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	for _, dir := range []string{*csvDir, *benchDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
	}
	if *faultMode {
		fc := faultConfig{
			Seed:          *faultSeed,
			Rounds:        *faultRounds,
			GapSec:        *faultGap,
			MinCompletion: *faultMinComp,
			Scheduler:     *faultSched,
			CorpusSeed:    *seed,
		}
		if err := faultBench(fc, *benchDir, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *learnMode {
		lc := learnConfig{
			Queries:    *learnQueries,
			Window:     *learnWindow,
			MinSamples: *learnMinSamples,
			Margin:     *learnMargin,
			PointEvery: *learnPointEvery,
			Gate:       *learnGate,
			Seed:       *seed,
		}
		if err := learnBench(lc, *benchDir, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *shardMode {
		sc := shardConfig{
			Queries:     *shardQueries,
			Concurrency: *shardConc,
			Shards:      *shardShards,
			CacheSize:   *shardCache,
			Scheduler:   *shardSched,
			Seed:        *seed,
			FaultSeed:   *faultSeed,
			Baseline:    *shardBaseline,
			ScaleGate:   *shardScaleGate,
		}
		if err := shardBench(sc, *benchDir); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *microMode {
		mc := microConfig{
			Input:    *microIn,
			Baseline: *microBaseline,
			Rebase:   *microRebase,
			TimeGate: *microTimeGate,
			HLLGate:  *microHLLGate,
			Seed:     *seed,
			SF:       *microSF,
		}
		if err := runMicroBench(mc, *benchDir); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *netMode {
		nc := netConfig{
			Queries:   *netQueries,
			Conns:     *netConns,
			QPS:       *qps,
			Workers:   *serveWorkers,
			CacheSize: *serveCache,
			Scheduler: *serveSched,
			Seed:      *seed,
			Baseline:  *netBaseline,
			P99Gate:   *netP99Gate,
		}
		if err := netBench(nc, *benchDir); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *serveMode {
		sc := serveConfig{
			Queries:     *serveQueries,
			Concurrency: *concurrency,
			QPS:         *qps,
			Workers:     *serveWorkers,
			CacheSize:   *serveCache,
			Scheduler:   *serveSched,
			Seed:        *seed,
			Timeout:     *serveTimeout,
			Admin:       *serveAdmin,
			Linger:      *serveLinger,
			SpansOut:    *serveSpans,
			Baseline:    *serveBaseline,
		}
		if err := serveBench(sc, *benchDir); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *queries, *gap, *seed, *csvDir, *traceOut, *promOut, *benchDir); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

// benchReport is one experiment's machine-readable result: wall time plus
// the metrics registry state after it ran. Counters accumulate across a
// multi-experiment invocation, so each report's metrics are cumulative up
// to and including its experiment.
type benchReport struct {
	Experiment  string                `json:"experiment"`
	Queries     int                   `json:"corpus_queries"`
	Seed        uint64                `json:"seed"`
	WallSeconds float64               `json:"wall_seconds"`
	Metrics     saqp.RegistrySnapshot `json:"metrics"`
}

// writeBench writes one BENCH_<name>.json report; a no-op when dir is "".
func writeBench(dir string, r benchReport) error {
	if dir == "" {
		return nil
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+r.Experiment+".json"), append(data, '\n'), 0o644)
}

// writeCSV writes rows (first row = header) to <dir>/<name>.csv; a no-op
// when dir is empty.
func writeCSV(dir, name string, rows [][]string) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

// f2 formats a float for CSV.
func f2(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

func run(exp string, queries int, gap float64, seed uint64, csvDir, traceOut, promOut, benchDir string) error {
	cfg := saqp.DefaultExperimentConfig()
	cfg.CorpusQueries = queries
	cfg.Seed = seed

	var traceFile *os.File
	if traceOut != "" || promOut != "" || benchDir != "" {
		var sink *saqp.TraceSink
		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				return err
			}
			traceFile = f
			sink = saqp.NewTraceSink(f)
		}
		cfg.Observer = saqp.NewObserver(sink)
	}

	needModels := map[string]bool{
		"table3": true, "table4": true, "table5": true,
		"fig2": true, "fig6": true, "fig7": true, "fig8": true, "all": true,
	}
	var art *saqp.TrainedArtifacts
	if needModels[exp] {
		fmt.Printf("Building corpus (%d queries) and training models...\n\n", queries)
		var err error
		art, err = saqp.BuildTrainedArtifacts(cfg)
		if err != nil {
			return err
		}
	}

	type runner struct {
		name string
		fn   func() error
	}
	runners := []runner{
		{"table2", func() error { return table2(csvDir) }},
		{"fig5", func() error { return fig5(csvDir) }},
		{"table3", func() error { return table3(art, csvDir) }},
		{"fig6", func() error { return fig6(art, csvDir) }},
		{"table4", func() error { return table45(art, false, csvDir) }},
		{"table5", func() error { return table45(art, true, csvDir) }},
		{"fig7", func() error { return fig7(art, cfg, csvDir) }},
		{"fig2", func() error { return fig2(art, cfg, csvDir) }},
		{"fig8", func() error { return fig8(art, cfg, gap, csvDir) }},
	}
	ran := false
	for _, r := range runners {
		if exp == "all" || exp == r.name {
			begin := time.Now()
			if err := r.fn(); err != nil {
				return fmt.Errorf("%s: %w", r.name, err)
			}
			report := benchReport{Experiment: r.name, Queries: queries, Seed: seed,
				WallSeconds: time.Since(begin).Seconds()}
			if cfg.Observer != nil {
				report.Metrics = cfg.Observer.Metrics.Snapshot()
			}
			if err := writeBench(benchDir, report); err != nil {
				return fmt.Errorf("%s: %w", r.name, err)
			}
			ran = true
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if err := cfg.Observer.Close(); err != nil {
		return err
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Printf("\nWrote trace to %s (open in ui.perfetto.dev)\n", traceOut)
	}
	if promOut != "" {
		f, err := os.Create(promOut)
		if err != nil {
			return err
		}
		if err := cfg.Observer.Metrics.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("Wrote metrics to %s\n", promOut)
	}
	return nil
}

func header(s string) {
	fmt.Printf("\n================ %s ================\n", s)
}

func table2(csvDir string) error {
	header("Table 2: Composition of Bing and Facebook Workloads")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Bin\tInput Size\tBing\tFacebook")
	rows := [][]string{{"bin", "input_size", "bing", "facebook"}}
	for _, r := range saqp.ReproduceTable2() {
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\n", r.Bin, r.InputDesc, r.Bing, r.Facebook)
		rows = append(rows, []string{strconv.Itoa(r.Bin), r.InputDesc,
			strconv.Itoa(r.Bing), strconv.Itoa(r.Facebook)})
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(csvDir, "table2", rows)
}

func fig5(csvDir string) error {
	header("Fig 5 / Section 3.2: Selectivity Estimation for Modified TPC-H Q11 (SF 1)")
	rows, err := saqp.ReproduceFig5()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Job\tType\tIS\tFS\tOutput Tuples")
	out := [][]string{{"job", "type", "is", "fs", "out_tuples"}}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.4f\t%.4f\t%.0f\n", r.ID, r.Type, r.IS, r.FS, r.OutRows)
		out = append(out, []string{r.ID, r.Type, f2(r.IS), f2(r.FS), f2(r.OutRows)})
	}
	w.Flush()
	fmt.Println("(paper: nation predicate ≈96% relayed along the tree; groupby cardinality ≈200,000)")
	return writeCSV(csvDir, "fig5", out)
}

func table3(art *saqp.TrainedArtifacts, csvDir string) error {
	header("Table 3: Accuracy Statistics — Job Time Prediction (Eq. 8)")
	res := saqp.ReproduceTable3(art)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Types\tR-squared accuracy\tAvg Error\t(n)")
	for _, r := range res.TrainRows {
		fmt.Fprintf(w, "%s\t%.2f%%\t%.2f%%\t%d\n", r.Op, 100*r.RSquared, 100*r.AvgError, r.N)
	}
	fmt.Fprintf(w, "TestSet\tN/A\t%.2f%%\t%d\n", 100*res.TestSetAvgError, res.TestSetJobs)
	w.Flush()
	fmt.Println("(paper: Groupby 96.75%/8.63%, Join 92.71%/14.40%, Extract 84.64%/9.38%, TestSet 13.98%)")
	out := [][]string{{"types", "r_squared", "avg_error", "n"}}
	for _, r := range res.TrainRows {
		out = append(out, []string{r.Op, f2(r.RSquared), f2(r.AvgError), strconv.Itoa(r.N)})
	}
	out = append(out, []string{"TestSet", "", f2(res.TestSetAvgError), strconv.Itoa(res.TestSetJobs)})
	return writeCSV(csvDir, "table3", out)
}

func table45(art *saqp.TrainedArtifacts, reduce bool, csvDir string) error {
	name, paper, csvName := "Table 4: Map Task Time Prediction (training set)",
		"(paper: Join 85.6%/16.27%, Groupby 92.4%/24.8%, Extract 92.74%/14.5%, Together 87.05%/20.5%)",
		"table4"
	rows := saqp.ReproduceTable4(art)
	if reduce {
		name = "Table 5: Reduce Task Time Prediction (training set)"
		paper = "(paper: Join 85.83%/14.23%, Groupby 98.82%/4.67%, Extract 90.03%/6.18%, Together 90.68%/7.4%)"
		csvName = "table5"
		rows = saqp.ReproduceTable5(art)
	}
	header(name)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Types\tR-squared accuracy\tAvg Error\t(n)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f%%\t%.2f%%\t%d\n", r.Op, 100*r.RSquared, 100*r.AvgError, r.N)
	}
	w.Flush()
	fmt.Println(paper)
	out := [][]string{{"types", "r_squared", "avg_error", "n"}}
	for _, r := range rows {
		out = append(out, []string{r.Op, f2(r.RSquared), f2(r.AvgError), strconv.Itoa(r.N)})
	}
	return writeCSV(csvDir, csvName, out)
}

func fig6(art *saqp.TrainedArtifacts, csvDir string) error {
	header("Fig 6: Accuracy of Job Execution Prediction (test set scatter)")
	pts := saqp.ReproduceFig6(art)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Actual < pts[j].Actual })
	// Render the scatter as binned actual→predicted quantiles.
	fmt.Println("actual(s)  predicted(s)  operator   (every 8th point; perfect prediction = equal columns)")
	out := [][]string{{"actual_sec", "predicted_sec", "operator"}}
	for i, p := range pts {
		if i%8 == 0 {
			fmt.Printf("%9.1f  %12.1f  %s\n", p.Actual, p.Predicted, p.Operator)
		}
		out = append(out, []string{f2(p.Actual), f2(p.Predicted), p.Operator})
	}
	return writeCSV(csvDir, "fig6", out)
}

func fig7(art *saqp.TrainedArtifacts, cfg saqp.ExperimentConfig, csvDir string) error {
	header("Fig 7: Accuracy of Query Response Time Prediction (100 GB queries)")
	res, err := saqp.ReproduceFig7(art, cfg, 15)
	if err != nil {
		return err
	}
	fmt.Println("actual(s)  predicted(s)")
	out := [][]string{{"actual_sec", "predicted_sec"}}
	for _, p := range res.Points {
		fmt.Printf("%9.1f  %12.1f\n", p.Actual, p.Predicted)
		out = append(out, []string{f2(p.Actual), f2(p.Predicted)})
	}
	fmt.Printf("average prediction error: %.2f%% (paper: 8.3%%)\n", 100*res.AvgError)
	return writeCSV(csvDir, "fig7", out)
}

func fig2(art *saqp.TrainedArtifacts, cfg saqp.ExperimentConfig, csvDir string) error {
	header("Fig 1-2: Motivation — QA(10GB), QB(100GB), QC(10GB) under HCS vs SWRD")
	out := [][]string{{"scheduler", "query", "response_sec", "alone_sec", "slowdown"}}
	for _, sch := range []string{saqp.SchedulerHCS, saqp.SchedulerSWRD} {
		res, err := saqp.ReproduceFig2(sch, art, cfg)
		if err != nil {
			return err
		}
		for _, q := range res.Queries {
			out = append(out, []string{sch, q.Name, f2(q.Response), f2(q.Alone), f2(q.Slowdown)})
		}
		fmt.Printf("\n%s:\n", sch)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  query\tresponse(s)\talone(s)\tslowdown\tjob spans (start-end s)")
		for _, q := range res.Queries {
			spans := ""
			for i, sp := range q.JobSpans {
				if i > 0 {
					spans += "  "
				}
				spans += fmt.Sprintf("%s[%.0f-%.0f]", q.JobLabels[i], sp[0], sp[1])
			}
			fmt.Fprintf(w, "  %s\t%.1f\t%.1f\t%.2fx\t%s\n", q.Name, q.Response, q.Alone, q.Slowdown, spans)
		}
		w.Flush()
	}
	fmt.Println("\n(paper: HCS delays the small queries ~3x through resource thrashing)")
	return writeCSV(csvDir, "fig2", out)
}

func fig8(art *saqp.TrainedArtifacts, cfg saqp.ExperimentConfig, gap float64, csvDir string) error {
	header("Fig 8: Average Query Response Times — Bing & Facebook Workloads")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tscheduler\tavg(s)\tp50(s)\tp95(s)\tbin1\tbin2\tbin3\tbin4\tbin5\tmakespan(s)")
	out := [][]string{{"workload", "scheduler", "avg_sec", "p50_sec", "p95_sec",
		"bin1", "bin2", "bin3", "bin4", "bin5", "makespan_sec"}}
	for _, mix := range []string{"bing", "facebook"} {
		rs, err := saqp.ReproduceFig8(mix, art, cfg, gap)
		if err != nil {
			return err
		}
		m := map[string]float64{}
		for _, r := range rs {
			m[r.Scheduler] = r.AvgResponseSec
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.1f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.1f\n",
				r.Workload, r.Scheduler, r.AvgResponseSec, r.P50Sec, r.P95Sec,
				r.AvgByBin[1], r.AvgByBin[2], r.AvgByBin[3], r.AvgByBin[4], r.AvgByBin[5],
				r.Makespan)
			out = append(out, []string{r.Workload, r.Scheduler, f2(r.AvgResponseSec),
				f2(r.P50Sec), f2(r.P95Sec), f2(r.AvgByBin[1]), f2(r.AvgByBin[2]),
				f2(r.AvgByBin[3]), f2(r.AvgByBin[4]), f2(r.AvgByBin[5]), f2(r.Makespan)})
		}
		fmt.Fprintf(w, "%s\tSWRD gain\tvs HFS %.1f%%, vs HCS %.1f%%\t\t\t\t\t\t\t\t\n",
			mix, 100*(1-m["SWRD"]/m["HFS"]), 100*(1-m["SWRD"]/m["HCS"]))
	}
	w.Flush()
	fmt.Println("(paper: SWRD vs HFS -40.2%/-43.9%; vs HCS -72.8%/-27.4%)")
	return writeCSV(csvDir, "fig8", out)
}
