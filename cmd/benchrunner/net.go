package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"saqp"
)

// netConfig parameterizes the network-frontend benchmark.
type netConfig struct {
	Queries   int     // total submissions across all connections
	Conns     int     // client connections
	QPS       float64 // open-loop arrival rate; 0 = closed-loop
	Workers   int     // simulator pool size
	CacheSize int     // plan/estimate cache entries
	Scheduler string  // pool scheduler name
	Seed      uint64

	Baseline string  // committed BENCH_net.json to gate against; "" = no gate
	P99Gate  float64 // fail when p99 exceeds baseline p99 times this factor; 0 disables
}

// netReport is BENCH_net.json: end-to-end wire performance (parse +
// socket + serving) plus completion accounting from both sides of the
// protocol.
type netReport struct {
	Experiment string  `json:"experiment"`
	Queries    int     `json:"queries"`
	Conns      int     `json:"client_conns"`
	QPS        float64 `json:"target_qps"`
	Workers    int     `json:"pool_workers"`
	CacheSize  int     `json:"cache_size"`
	Scheduler  string  `json:"scheduler"`
	Seed       uint64  `json:"seed"`

	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputQPS float64 `json:"achieved_qps"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`

	Submitted       uint64  `json:"submitted"`
	Completed       uint64  `json:"completed"`
	Rejected        uint64  `json:"rejected"`
	Errors          uint64  `json:"errors"`
	ClientCompleted int64   `json:"client_completed"`
	ClientBusy      int64   `json:"client_busy"`
	ClientErrors    int64   `json:"client_errors"`
	Lost            int64   `json:"lost_completions"`
	CacheHitRate    float64 `json:"cache_hit_rate"`

	Metrics saqp.RegistrySnapshot `json:"metrics"`
}

// netDrainTimeout bounds the frontend's graceful drain at benchmark
// end.
const netDrainTimeout = 30 * time.Second

// netBench drives the TCP frontend over real sockets: a trained
// framework serves behind a NetServer on loopback while N client
// connections replay the TPC-H mix as an open-loop arrival process,
// each SUBMITting and WAITing over the wire. Latency therefore
// includes encode, socket, parse and serving time — the number the
// in-process serve benchmark cannot see.
func netBench(nc netConfig, benchDir string) error {
	fmt.Printf("Building framework and training models for the net benchmark...\n")
	fw, err := saqp.NewFramework(saqp.Options{Observer: saqp.NewObserver(nil)})
	if err != nil {
		return err
	}
	if err := fw.TrainDefault(); err != nil {
		return err
	}
	srv, err := fw.NewServer(saqp.ServerOptions{
		Workers:   nc.Workers,
		CacheSize: nc.CacheSize,
		Scheduler: nc.Scheduler,
	})
	if err != nil {
		return err
	}
	ns, err := fw.NewNetServer(srv, saqp.NetOptions{
		Addr:     "127.0.0.1:0",
		MaxConns: nc.Conns + 8,
	})
	if err != nil {
		srv.Close()
		return err
	}

	names := saqp.TPCHNames()
	mix := make([]string, len(names))
	for i, n := range names {
		sql, err := saqp.TPCHSQL(n)
		if err != nil {
			return err
		}
		mix[i] = sql
	}

	fmt.Printf("Serving %d queries over TCP %s (%d client conns, %d pool workers, %s, qps=%g)...\n",
		nc.Queries, ns.Addr(), nc.Conns, nc.Workers, nc.Scheduler, nc.QPS)

	// Pacer: open-loop arrivals released on a fixed schedule regardless
	// of completion speed; QPS=0 drains as fast as the clients can go.
	arrivals := make(chan int, nc.Queries)
	go func() {
		defer close(arrivals)
		if nc.QPS <= 0 {
			for i := 0; i < nc.Queries; i++ {
				arrivals <- i
			}
			return
		}
		interval := time.Duration(float64(time.Second) / nc.QPS)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for i := 0; i < nc.Queries; i++ {
			arrivals <- i
			<-tick.C
		}
	}()

	var (
		mu        sync.Mutex
		latencies []time.Duration
		done      int64
		busy      int64
		cerrs     int64
	)
	begin := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < nc.Conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := saqp.DialNet(ns.Addr())
			if err != nil {
				atomic.AddInt64(&cerrs, 1)
				for range arrivals {
					// Keep draining so other connections see every arrival.
				}
				return
			}
			defer cl.Close()
			for i := range arrivals {
				// Seeds cycle with the mix so repeated queries share both
				// SQL and ground-truth cost: cache hits are real hits.
				sql := mix[i%len(mix)]
				seed := nc.Seed + uint64(i%len(mix))
				t0 := time.Now()
				id, err := cl.Submit(sql, seed)
				if err != nil {
					if saqp.IsNetBusy(err) {
						atomic.AddInt64(&busy, 1)
					} else {
						atomic.AddInt64(&cerrs, 1)
					}
					continue
				}
				if _, err := cl.Wait(id); err != nil {
					atomic.AddInt64(&cerrs, 1)
					continue
				}
				lat := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, lat)
				done++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(begin).Seconds()

	st := srv.Stats()
	ctx, cancel := context.WithTimeout(context.Background(), netDrainTimeout)
	defer cancel()
	if err := ns.Shutdown(ctx); err != nil {
		return fmt.Errorf("net: frontend drain incomplete: %w", err)
	}
	if err := srv.Close(); err != nil {
		return err
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(math.Ceil(p*float64(len(latencies)))) - 1
		if i < 0 {
			i = 0
		}
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	// Exactly-once accounting across the wire: every admitted submission
	// must complete AND be observed by exactly one successful client WAIT.
	lost := int64(st.Submitted) - done

	r := netReport{
		Experiment: "net",
		Queries:    nc.Queries,
		Conns:      nc.Conns,
		QPS:        nc.QPS,
		Workers:    nc.Workers,
		CacheSize:  nc.CacheSize,
		Scheduler:  nc.Scheduler,
		Seed:       nc.Seed,

		WallSeconds:   wall,
		ThroughputQPS: float64(done) / wall,
		LatencyP50Ms:  pct(0.50),
		LatencyP95Ms:  pct(0.95),
		LatencyP99Ms:  pct(0.99),
		LatencyMaxMs:  pct(1.0),

		Submitted:       st.Submitted,
		Completed:       st.Completed,
		Rejected:        st.Rejected,
		Errors:          st.Errors,
		ClientCompleted: done,
		ClientBusy:      busy,
		ClientErrors:    cerrs,
		Lost:            lost,
		CacheHitRate:    st.HitRate(),

		Metrics: fw.Obs.Metrics.Snapshot(),
	}

	fmt.Printf("served %d/%d queries over the wire in %.2fs (%.1f q/s)\n",
		st.Completed, nc.Queries, wall, r.ThroughputQPS)
	fmt.Printf("latency p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms (incl. socket+parse)\n",
		r.LatencyP50Ms, r.LatencyP95Ms, r.LatencyP99Ms, r.LatencyMaxMs)
	fmt.Printf("cache hit-rate %.1f%% — busy=%d client-errors=%d\n", 100*r.CacheHitRate, busy, cerrs)

	if benchDir != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(benchDir, "BENCH_net.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}

	// CI gates. Completion first: at default load nothing may be lost,
	// refused, or errored — 100% of submissions complete and are seen.
	if lost != 0 {
		return fmt.Errorf("net: lost completions: %d", lost)
	}
	if done != int64(nc.Queries) || busy != 0 || cerrs != 0 {
		return fmt.Errorf("net: incomplete run: completed=%d/%d busy=%d client-errors=%d",
			done, nc.Queries, busy, cerrs)
	}
	if st.Submitted != st.Completed || st.Errors != 0 || st.Rejected != 0 {
		return fmt.Errorf("net: engine accounting mismatch: submitted=%d completed=%d rejected=%d errors=%d",
			st.Submitted, st.Completed, st.Rejected, st.Errors)
	}
	if nc.Baseline != "" {
		if err := netBaselineGate(nc.Baseline, r, nc.P99Gate); err != nil {
			return err
		}
	}
	return nil
}

// netBaselineGate diffs this run against a committed BENCH_net.json
// and fails when p99 regressed beyond the gate factor. Wall-clock
// numbers vary across machines, so the gate is deliberately loose —
// it catches order-of-magnitude protocol regressions, not noise.
func netBaselineGate(path string, r netReport, gate float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("net: reading baseline: %w", err)
	}
	var base netReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("net: parsing baseline %s: %w", path, err)
	}
	fmt.Printf("delta vs baseline %s:\n", path)
	row := func(name string, cur, old float64) {
		d := 0.0
		if old != 0 {
			d = 100 * (cur - old) / old
		}
		fmt.Printf("  %-18s %10.2f  baseline %10.2f  (%+.1f%%)\n", name, cur, old, d)
	}
	row("throughput q/s", r.ThroughputQPS, base.ThroughputQPS)
	row("latency p50 ms", r.LatencyP50Ms, base.LatencyP50Ms)
	row("latency p95 ms", r.LatencyP95Ms, base.LatencyP95Ms)
	row("latency p99 ms", r.LatencyP99Ms, base.LatencyP99Ms)
	row("cache hit-rate", r.CacheHitRate, base.CacheHitRate)
	if gate > 0 && base.LatencyP99Ms > 0 && r.LatencyP99Ms > base.LatencyP99Ms*gate {
		return fmt.Errorf("net: p99 %.1fms exceeds baseline %.1fms x %.2f gate",
			r.LatencyP99Ms, base.LatencyP99Ms, gate)
	}
	return nil
}
