package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"saqp"
)

// serveConfig parameterizes the open-loop serving benchmark.
type serveConfig struct {
	Queries     int     // total submissions
	Concurrency int     // submitter goroutines
	QPS         float64 // arrival rate; 0 = closed-loop (as fast as possible)
	Workers     int     // simulator pool size
	CacheSize   int     // plan/estimate cache entries
	Scheduler   string  // pool scheduler name
	Seed        uint64
	Timeout     time.Duration // per-query wall-clock timeout; 0 = none

	Admin    string        // admin endpoint address; "" = no admin server
	Linger   time.Duration // keep the server up this long after the bench
	SpansOut string        // span-tree JSON output path; "" = spans off unless Admin is set
	Baseline string        // committed BENCH_serve.json to diff against; "" = no diff
}

// serveReport is BENCH_serve.json: wall-clock serving performance plus
// the engine's own counters and the deterministic metrics snapshot.
type serveReport struct {
	Experiment  string  `json:"experiment"`
	Queries     int     `json:"queries"`
	Concurrency int     `json:"concurrency"`
	QPS         float64 `json:"target_qps"`
	Workers     int     `json:"pool_workers"`
	CacheSize   int     `json:"cache_size"`
	Scheduler   string  `json:"scheduler"`
	Seed        uint64  `json:"seed"`

	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputQPS float64 `json:"achieved_qps"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`

	Submitted    uint64  `json:"submitted"`
	Completed    uint64  `json:"completed"`
	Canceled     uint64  `json:"canceled"`
	Rejected     uint64  `json:"rejected"`
	Errors       uint64  `json:"errors"`
	Lost         int64   `json:"lost_completions"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	SpansStarted  uint64  `json:"spans_started"`
	SpansFinished uint64  `json:"spans_finished"`
	SLOFastBurn   float64 `json:"slo_fast_burn"`
	SLOSlowBurn   float64 `json:"slo_slow_burn"`
	SLOFiring     bool    `json:"slo_firing"`
	SLOAlerts     int     `json:"slo_alerts"`

	Metrics saqp.RegistrySnapshot `json:"metrics"`
}

// serveBench replays the TPC-H query mix through one saqp.Server as an
// open-loop arrival process: a pacer releases arrivals at the target
// rate (or immediately when QPS is 0) to a fixed set of submitter
// goroutines, each of which submits and waits for its completion. Wall
// clock is measured only here — the engine itself is clock-free.
func serveBench(sc serveConfig, benchDir string) error {
	// Register the signal handler before any work so a SIGTERM arriving
	// mid-benchmark is buffered and ends the linger window immediately.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	fmt.Printf("Building framework and training models for serving...\n")
	fw, err := saqp.NewFramework(saqp.Options{Observer: saqp.NewObserver(nil)})
	if err != nil {
		return err
	}
	if err := fw.TrainDefault(); err != nil {
		return err
	}
	srv, err := fw.NewServer(saqp.ServerOptions{
		Workers:      sc.Workers,
		CacheSize:    sc.CacheSize,
		Scheduler:    sc.Scheduler,
		QueryTimeout: sc.Timeout,
		TraceSpans:   sc.SpansOut != "",
		SLO:          &saqp.SLOConfig{},
		AdminAddr:    sc.Admin,
	})
	if err != nil {
		return err
	}
	if sc.Admin != "" {
		fmt.Printf("admin endpoint: %s (/metrics /spans /slo /statz /debug/pprof)\n", srv.AdminURL())
	}

	names := saqp.TPCHNames()
	mix := make([]string, len(names))
	for i, n := range names {
		sql, err := saqp.TPCHSQL(n)
		if err != nil {
			return err
		}
		mix[i] = sql
	}

	fmt.Printf("Serving %d queries (%d submitters, %d pool workers, %s, qps=%g)...\n",
		sc.Queries, sc.Concurrency, sc.Workers, sc.Scheduler, sc.QPS)

	// Pacer: an open-loop arrival process. Arrival indices are released
	// on a fixed schedule regardless of how fast completions come back;
	// with QPS=0 the channel is drained as fast as submitters can go.
	arrivals := make(chan int, sc.Queries)
	go func() {
		defer close(arrivals)
		if sc.QPS <= 0 {
			for i := 0; i < sc.Queries; i++ {
				arrivals <- i
			}
			return
		}
		interval := time.Duration(float64(time.Second) / sc.QPS)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for i := 0; i < sc.Queries; i++ {
			arrivals <- i
			<-tick.C
		}
	}()

	var (
		mu        sync.Mutex
		latencies []time.Duration
		done      int64
	)
	begin := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < sc.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range arrivals {
				// Seeds cycle with the mix so repeated queries share both
				// SQL and ground-truth cost: cache hits are real hits.
				sql := mix[i%len(mix)]
				seed := sc.Seed + uint64(i%len(mix))
				t0 := time.Now()
				tk, err := srv.Submit(context.Background(), sql, seed)
				if err != nil {
					continue // counted by the engine as error/rejection
				}
				if _, err := tk.Wait(context.Background()); err != nil {
					continue // counted by the engine as canceled/error
				}
				lat := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, lat)
				done++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(begin).Seconds()

	st := srv.Stats()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(math.Ceil(p*float64(len(latencies)))) - 1
		if i < 0 {
			i = 0
		}
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	// Every submission must be accounted for exactly once: nothing in
	// this benchmark cancels or errors, so every admitted submission
	// must complete AND be observed by exactly one successful Wait.
	lost := int64(st.Submitted) - done

	r := serveReport{
		Experiment:  "serve",
		Queries:     sc.Queries,
		Concurrency: sc.Concurrency,
		QPS:         sc.QPS,
		Workers:     sc.Workers,
		CacheSize:   sc.CacheSize,
		Scheduler:   sc.Scheduler,
		Seed:        sc.Seed,

		WallSeconds:   wall,
		ThroughputQPS: float64(done) / wall,
		LatencyP50Ms:  pct(0.50),
		LatencyP95Ms:  pct(0.95),
		LatencyP99Ms:  pct(0.99),
		LatencyMaxMs:  pct(1.0),

		Submitted:    st.Submitted,
		Completed:    st.Completed,
		Canceled:     st.Canceled,
		Rejected:     st.Rejected,
		Errors:       st.Errors,
		Lost:         lost,
		CacheHitRate: st.HitRate(),

		SpansStarted:  st.SpansStarted,
		SpansFinished: st.SpansFinished,
		SLOFastBurn:   st.SLOFastBurn,
		SLOSlowBurn:   st.SLOSlowBurn,
		SLOFiring:     st.SLOFiring,
		SLOAlerts:     st.SLOAlerts,

		Metrics: fw.Obs.Metrics.Snapshot(),
	}

	fmt.Printf("served %d/%d queries in %.2fs (%.1f q/s)\n", st.Completed, sc.Queries, wall, r.ThroughputQPS)
	fmt.Printf("latency p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms\n",
		r.LatencyP50Ms, r.LatencyP95Ms, r.LatencyP99Ms, r.LatencyMaxMs)
	fmt.Printf("cache hit-rate %.1f%% (%d hits / %d misses, %d evictions)\n",
		100*r.CacheHitRate, st.CacheHits, st.CacheMisses, st.CacheEvictions)
	if r.SpansStarted > 0 {
		fmt.Printf("spans %d started / %d finished\n", r.SpansStarted, r.SpansFinished)
	}
	fmt.Printf("SLO burn fast=%.2f slow=%.2f firing=%v alerts=%d\n",
		r.SLOFastBurn, r.SLOSlowBurn, r.SLOFiring, r.SLOAlerts)

	if sc.SpansOut != "" {
		if err := writeSpans(srv, sc.SpansOut); err != nil {
			return err
		}
	}

	if benchDir != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(benchDir, "BENCH_serve.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	if sc.Baseline != "" {
		if err := printBaselineDelta(sc.Baseline, r); err != nil {
			return err
		}
	}

	// Hold the server (and with it the admin endpoint) open so a live
	// process can be inspected after the load finishes; a buffered
	// SIGINT/SIGTERM — even one delivered mid-benchmark — ends the window
	// immediately, and the server still shuts down gracefully.
	if sc.Linger > 0 {
		fmt.Printf("lingering %s before shutdown (SIGINT/SIGTERM to end early)...\n", sc.Linger)
		select {
		case <-time.After(sc.Linger):
		case s := <-sig:
			fmt.Printf("caught %v: shutting down\n", s)
		}
	}
	if err := srv.Close(); err != nil {
		return err
	}

	// Fail loudly so CI catches regressions: no completion may be lost,
	// and repeated queries must actually hit the cache.
	if lost != 0 {
		return fmt.Errorf("serve: lost completions: %d", lost)
	}
	if st.Submitted != st.Completed || st.Errors != 0 || st.Canceled != 0 {
		return fmt.Errorf("serve: accounting mismatch: submitted=%d completed=%d canceled=%d errors=%d",
			st.Submitted, st.Completed, st.Canceled, st.Errors)
	}
	if sc.Queries >= 50 && r.CacheHitRate <= 0.5 {
		return fmt.Errorf("serve: cache hit-rate %.2f below 0.5 floor", r.CacheHitRate)
	}
	return nil
}

// writeSpans dumps the server's retained span trees as JSON to path,
// creating the parent directory if needed.
func writeSpans(srv *saqp.Server, path string) error {
	sp := srv.Spans()
	if sp == nil {
		return fmt.Errorf("serve: -spans set but tracing is off")
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sp.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	c := sp.Counts()
	fmt.Printf("wrote %d span trees to %s (%d started, %d evicted)\n",
		c.Retained, path, c.Started, c.Evicted)
	return nil
}

// printBaselineDelta diffs this run's headline numbers against a
// committed BENCH_serve.json. Wall-clock figures vary across machines,
// so the delta is informational — the deterministic counters (cache
// hit-rate, span counts, SLO state) are the ones worth eyeballing.
func printBaselineDelta(path string, r serveReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("serve: reading baseline: %w", err)
	}
	var base serveReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("serve: parsing baseline %s: %w", path, err)
	}
	fmt.Printf("delta vs baseline %s:\n", path)
	row := func(name string, cur, old float64) {
		d := 0.0
		if old != 0 {
			d = 100 * (cur - old) / old
		}
		fmt.Printf("  %-18s %10.2f  baseline %10.2f  (%+.1f%%)\n", name, cur, old, d)
	}
	row("throughput q/s", r.ThroughputQPS, base.ThroughputQPS)
	row("latency p50 ms", r.LatencyP50Ms, base.LatencyP50Ms)
	row("latency p95 ms", r.LatencyP95Ms, base.LatencyP95Ms)
	row("latency p99 ms", r.LatencyP99Ms, base.LatencyP99Ms)
	row("cache hit-rate", r.CacheHitRate, base.CacheHitRate)
	row("spans finished", float64(r.SpansFinished), float64(base.SpansFinished))
	row("slo alerts", float64(r.SLOAlerts), float64(base.SLOAlerts))
	return nil
}
