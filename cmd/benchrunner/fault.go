package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"saqp"
)

// faultConfig parameterizes the fault-injection replay benchmark.
type faultConfig struct {
	Seed          uint64  // fault-plan seed (expansion + failure hashes)
	Rounds        int     // copies of the canonical TPC-H set replayed
	GapSec        float64 // mean Poisson inter-arrival gap
	MinCompletion float64 // CI gate: fail when completion rate < this; 0 disables
	Scheduler     string  // scheduler for both replays
	CorpusSeed    uint64  // experiment seed (cost models, arrivals)
}

// faultReport is BENCH_fault.json: the faulted replay's recovery outcome
// against its clean twin. Every field is deterministic in the two seeds.
type faultReport struct {
	Experiment string  `json:"experiment"`
	Scheduler  string  `json:"scheduler"`
	Seed       uint64  `json:"seed"`
	FaultSeed  uint64  `json:"fault_seed"`
	Rounds     int     `json:"rounds"`
	GapSec     float64 `json:"gap_sec"`

	Queries        int     `json:"queries"`
	Completed      int     `json:"completed"`
	Failed         int     `json:"failed"`
	CompletionRate float64 `json:"completion_rate"`

	CleanP50Sec      float64 `json:"clean_p50_sec"`
	CleanP99Sec      float64 `json:"clean_p99_sec"`
	FaultP50Sec      float64 `json:"fault_p50_sec"`
	FaultP99Sec      float64 `json:"fault_p99_sec"`
	P50Inflation     float64 `json:"p50_inflation"`
	P99Inflation     float64 `json:"p99_inflation"`
	CleanMakespanSec float64 `json:"clean_makespan_sec"`
	FaultMakespanSec float64 `json:"fault_makespan_sec"`

	TaskFailures       int `json:"task_failures"`
	TaskRetries        int `json:"task_retries"`
	NodeCrashes        int `json:"node_crashes"`
	NodeRecoveries     int `json:"node_recoveries"`
	NodesBlacklisted   int `json:"nodes_blacklisted"`
	SpeculativeCancels int `json:"speculative_cancels"`
	QueryFailures      int `json:"query_failures"`

	WallSeconds float64 `json:"wall_seconds"`
}

// faultBench replays the canonical TPC-H queries twice — clean, then
// under the default fault plan seeded with fc.Seed — prints the recovery
// summary, writes BENCH_fault.json, and enforces the completion gate.
func faultBench(fc faultConfig, benchDir, csvDir string) error {
	cfg := saqp.DefaultExperimentConfig()
	cfg.Seed = fc.CorpusSeed
	spec := saqp.DefaultFaultSpec(fc.Seed)
	fmt.Printf("Fault replay: %d round(s) of the TPC-H set, gap %.0fs, plan seed %d (%d nodes, horizon %.0fs)\n",
		fc.Rounds, fc.GapSec, fc.Seed, spec.Nodes, spec.HorizonSec)

	begin := time.Now()
	r, err := saqp.ReproduceFaultReplay(nil, cfg, saqp.NewFaultPlan(spec),
		fc.Scheduler, fc.Rounds, fc.GapSec)
	if err != nil {
		return err
	}
	wall := time.Since(begin).Seconds()

	header("Fault Replay: TPC-H under deterministic fault injection")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "queries\t%d (%d completed, %d failed)\n", r.Queries, r.Completed, r.Failed)
	fmt.Fprintf(w, "completion rate\t%.1f%%\n", 100*r.CompletionRate)
	fmt.Fprintf(w, "p50 response\t%.1fs clean → %.1fs faulted (%.2fx)\n", r.CleanP50Sec, r.FaultP50Sec, r.P50Inflation)
	fmt.Fprintf(w, "p99 response\t%.1fs clean → %.1fs faulted (%.2fx)\n", r.CleanP99Sec, r.FaultP99Sec, r.P99Inflation)
	fmt.Fprintf(w, "makespan\t%.1fs clean → %.1fs faulted\n", r.CleanMakespanSec, r.FaultMakespanSec)
	fmt.Fprintf(w, "injected\t%d task failure(s), %d node crash(es)\n", r.Faults.TaskFailures, r.Faults.NodeCrashes)
	fmt.Fprintf(w, "recovered\t%d task retr(ies), %d node recover(ies), %d blacklist(s), %d speculative cancel(s)\n",
		r.Faults.TaskRetries, r.Faults.NodeRecoveries, r.Faults.NodesBlacklisted, r.Faults.SpeculativeCancels)
	w.Flush()

	if err := writeCSV(csvDir, "fault", [][]string{
		{"queries", "completed", "failed", "completion_rate",
			"clean_p50_sec", "fault_p50_sec", "clean_p99_sec", "fault_p99_sec",
			"task_failures", "task_retries", "node_crashes", "nodes_blacklisted"},
		{fmt.Sprint(r.Queries), fmt.Sprint(r.Completed), fmt.Sprint(r.Failed), f2(r.CompletionRate),
			f2(r.CleanP50Sec), f2(r.FaultP50Sec), f2(r.CleanP99Sec), f2(r.FaultP99Sec),
			fmt.Sprint(r.Faults.TaskFailures), fmt.Sprint(r.Faults.TaskRetries),
			fmt.Sprint(r.Faults.NodeCrashes), fmt.Sprint(r.Faults.NodesBlacklisted)},
	}); err != nil {
		return err
	}

	if benchDir != "" {
		rep := faultReport{
			Experiment: "fault",
			Scheduler:  r.Scheduler,
			Seed:       fc.CorpusSeed,
			FaultSeed:  fc.Seed,
			Rounds:     fc.Rounds,
			GapSec:     fc.GapSec,

			Queries:        r.Queries,
			Completed:      r.Completed,
			Failed:         r.Failed,
			CompletionRate: r.CompletionRate,

			CleanP50Sec:      r.CleanP50Sec,
			CleanP99Sec:      r.CleanP99Sec,
			FaultP50Sec:      r.FaultP50Sec,
			FaultP99Sec:      r.FaultP99Sec,
			P50Inflation:     r.P50Inflation,
			P99Inflation:     r.P99Inflation,
			CleanMakespanSec: r.CleanMakespanSec,
			FaultMakespanSec: r.FaultMakespanSec,

			TaskFailures:       r.Faults.TaskFailures,
			TaskRetries:        r.Faults.TaskRetries,
			NodeCrashes:        r.Faults.NodeCrashes,
			NodeRecoveries:     r.Faults.NodeRecoveries,
			NodesBlacklisted:   r.Faults.NodesBlacklisted,
			SpeculativeCancels: r.Faults.SpeculativeCancels,
			QueryFailures:      r.Faults.QueryFailures,

			WallSeconds: wall,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(benchDir, "BENCH_fault.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nWrote %s\n", path)
	}

	if fc.MinCompletion > 0 && r.CompletionRate < fc.MinCompletion {
		return fmt.Errorf("completion rate %.3f below gate %.3f (%d of %d queries failed)",
			r.CompletionRate, fc.MinCompletion, r.Failed, r.Queries)
	}
	return nil
}
