// Command wlgen emits a workload description as JSON: the query mix of the
// paper's Table 2 (Bing or Facebook composition) instantiated over the
// synthetic TPC-H/TPC-DS schemas, with Poisson arrival offsets.
//
// Usage:
//
//	wlgen -mix bing -gap 12 -seed 7 > bing.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"saqp/internal/workload"
)

// itemJSON is the serialised form of one workload entry.
type itemJSON struct {
	SQL        string  `json:"sql"`
	Shape      string  `json:"shape"`
	Bin        int     `json:"bin"`
	ScaleFac   float64 `json:"scale_factor"`
	ArrivalSec float64 `json:"arrival_sec"`
}

func main() {
	var (
		mix  = flag.String("mix", "bing", "workload mix: bing or facebook")
		gap  = flag.Float64("gap", 12, "mean Poisson inter-arrival gap (seconds)")
		seed = flag.Uint64("seed", 2018, "generator seed")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"wlgen emits a workload description as JSON: the query mix of the\n"+
				"paper's Table 2 (Bing or Facebook composition) over the synthetic\n"+
				"TPC-H/TPC-DS schemas, with Poisson arrival offsets.\n\n"+
				"usage: wlgen [flags] > workload.json\n\n"+
				"example:\n"+
				"  wlgen -mix bing -gap 12 -seed 7 > bing.json\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(*mix, *gap, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
}

func run(mix string, gap float64, seed uint64) error {
	var comp []workload.BinSpec
	switch mix {
	case "bing":
		comp = workload.BingComposition()
	case "facebook":
		comp = workload.FacebookComposition()
	default:
		return fmt.Errorf("unknown mix %q (want bing or facebook)", mix)
	}
	w, err := workload.BuildWorkload(mix, comp, gap, seed)
	if err != nil {
		return err
	}
	out := struct {
		Name  string     `json:"name"`
		Items []itemJSON `json:"items"`
	}{Name: w.Name}
	for _, it := range w.Items {
		out.Items = append(out.Items, itemJSON{
			SQL:        it.Query.String(),
			Shape:      it.Shape.String(),
			Bin:        it.Bin,
			ScaleFac:   it.SF,
			ArrivalSec: it.ArrivalSec,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
