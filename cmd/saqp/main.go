// Command saqp compiles a HiveQL-style query against the synthetic
// TPC-H/TPC-DS schemas, prints its MapReduce plan, the semantics-aware
// selectivity estimates (paper Section 3), and — after training the
// multivariate models on a synthetic corpus — the predicted execution time
// and Weighted Resource Demand (Section 4).
//
// Usage:
//
//	saqp -query "SELECT c_name, count(*) FROM customer JOIN orders ON o_custkey = c_custkey GROUP BY c_name"
//	saqp -sf 10 -train -query "..."
//
// With -trace and/or -metrics the query is additionally executed on the
// simulated cluster under -scheduler, producing a Chrome trace-event
// JSON (open in Perfetto: ui.perfetto.dev) and a Prometheus text-format
// metrics dump. Both outputs are deterministic for a fixed -seed.
//
//	saqp -query "..." -trace run.trace.json -metrics run.prom
//
// With -admin the query is served through the concurrent serving engine
// instead, and the process stays up hosting the live introspection
// endpoint (/metrics, /spans, /slo, /statz, /debug/pprof) until
// SIGINT/SIGTERM:
//
//	saqp -query "..." -admin :8080
//	curl localhost:8080/metrics
//	curl localhost:8080/spans
//
// With -listen the process hosts the TCP query frontend instead: a
// RESP-style protocol speaking SUBMIT / WAIT / STATS / EXPLAIN /
// METRICS / PING / QUIT (grammar in DESIGN.md), serving until
// SIGINT/SIGTERM with a graceful drain. -query becomes optional:
//
//	saqp -train -listen :6380
//	printf 'SUBMIT SELECT COUNT(*) FROM lineitem\r\n' | nc localhost 6380
//
// With -cluster N the process hosts a sharded serving cluster instead:
// N primary/replica engine pairs, each pair behind its own pair of TCP
// frontends, with fingerprint-based slot routing (-MOVED redirects, the
// CLUSTER verb) and a sentinel failover loop driven by a wall-clock
// heartbeat. A deterministic fault plan crashes primaries so a watcher
// sees detection, quorum votes, and replica promotion live:
//
//	saqp -cluster 3
//	printf 'CLUSTER\r\n' | nc localhost <printed port>
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"saqp"
)

func main() {
	var (
		sql       = flag.String("query", "", "HiveQL query text (required)")
		sf        = flag.Float64("sf", 10, "scale factor of the synthetic database (1 ≈ 1 GB TPC-H)")
		train     = flag.Bool("train", false, "train the time models on a synthetic corpus (slower; enables predictions)")
		queries   = flag.Int("train-queries", 160, "corpus size when -train is set")
		models    = flag.String("models", "", "path to a trained-models JSON bundle: loaded if it exists, written after -train otherwise")
		traceOut  = flag.String("trace", "", "simulate the query and write a Chrome trace-event JSON (Perfetto-loadable) to this file")
		promOut   = flag.String("metrics", "", "simulate the query and write Prometheus text-format metrics to this file")
		schedler  = flag.String("scheduler", saqp.SchedulerSWRD, "scheduler for the simulated run (HCS|HFS|SWRD)")
		seed      = flag.Uint64("seed", 2018, "cost-model seed for the simulated run")
		faults    = flag.Bool("faults", false, "inject the default deterministic fault plan into the simulated run (crashes, slowdowns, transient task failures)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed of the fault plan used with -faults")
		admin     = flag.String("admin", "", "serve the query through the serving engine and host the live introspection endpoint on this address (host:port) until SIGINT/SIGTERM")
		listen    = flag.String("listen", "", "host the TCP query frontend on this address (host:port) until SIGINT/SIGTERM; RESP-style SUBMIT/WAIT/STATS/EXPLAIN/METRICS/PING/QUIT, makes -query optional")
		cluster   = flag.Int("cluster", 0, "host a sharded serving cluster with this many primary/replica shard pairs (TCP frontends on ephemeral ports, sentinel failover on a deterministic fault plan seeded by -fault-seed), makes -query optional")
	)
	flag.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(),
			"saqp — semantics-aware analytic-query prediction: compile a HiveQL query,\n"+
				"estimate selectivities, predict execution time/WRD, and optionally simulate,\n"+
				"serve via the admin endpoint (-admin), or host the TCP frontend (-listen).\n\n"+
				"Usage: saqp -query \"SELECT ...\" [flags]   or   saqp -listen :6380 [flags]\n\nFlags:")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *cluster > 0 {
		if err := runCluster(*cluster, *sf, *train, *queries, *models, *schedler, *faultSeed); err != nil {
			fmt.Fprintln(os.Stderr, "saqp:", err)
			os.Exit(1)
		}
		return
	}
	if *sql == "" && *listen == "" {
		fmt.Fprintln(os.Stderr, "saqp: -query is required (unless -listen or -cluster is set)")
		flag.Usage()
		os.Exit(2)
	}
	var fp *saqp.FaultPlan
	if *faults {
		fp = saqp.NewFaultPlan(saqp.DefaultFaultSpec(*faultSeed))
	}
	if err := run(*sql, *sf, *train, *queries, *models, *traceOut, *promOut, *schedler, *seed, fp, *admin, *listen); err != nil {
		fmt.Fprintln(os.Stderr, "saqp:", err)
		os.Exit(1)
	}
}

func run(sql string, sf float64, train bool, trainQueries int, modelsPath,
	traceOut, promOut, scheduler string, seed uint64, fp *saqp.FaultPlan, admin, listen string) error {
	var o *saqp.Observer
	var traceFile *os.File
	if traceOut != "" || promOut != "" {
		var sink *saqp.TraceSink
		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				return err
			}
			traceFile = f
			sink = saqp.NewTraceSink(f)
		}
		o = saqp.NewObserver(sink)
	}
	fw, err := saqp.NewFramework(saqp.Options{ScaleFactor: sf, Observer: o})
	if err != nil {
		return err
	}
	if modelsPath != "" {
		if data, err := os.ReadFile(modelsPath); err == nil {
			if err := fw.LoadModels(data); err != nil {
				return fmt.Errorf("loading %s: %w", modelsPath, err)
			}
			fmt.Printf("Loaded trained models from %s\n", modelsPath)
			train = false
		}
	}
	if sql == "" {
		// -listen without -query: no one-shot report, straight to serving.
		if train {
			if err := trainModels(fw, trainQueries, modelsPath); err != nil {
				return err
			}
		}
		return serveNet(fw, scheduler, listen)
	}
	dag, err := fw.Compile(sql)
	if err != nil {
		return err
	}
	fmt.Printf("Plan (%d MapReduce jobs):\n", len(dag.Jobs))
	for _, j := range dag.Jobs {
		fmt.Printf("  %s\n", j.Label())
	}

	est, err := fw.Estimate(dag)
	if err != nil {
		return err
	}
	fmt.Println("\nSelectivity estimation:")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  job\ttype\tD_in\tD_med\tD_out\tIS\tFS\trows out\tmaps\treds")
	for _, je := range est.Jobs {
		fmt.Fprintf(w, "  %s\t%s\t%s\t%s\t%s\t%.4f\t%.4f\t%.0f\t%d\t%d\n",
			je.Job.ID, je.Job.Type, gb(je.InBytes), gb(je.MedBytes), gb(je.OutBytes),
			je.IS, je.FS, je.OutRows, je.NumMaps, je.NumReduces)
	}
	w.Flush()

	if !train && fw.TaskTime == nil {
		fmt.Println("\n(run with -train to predict execution time and WRD)")
		if err := simulate(fw, o, est, traceFile, traceOut, promOut, scheduler, seed, fp); err != nil {
			return err
		}
		return serveAdmin(fw, sql, scheduler, seed, admin)
	}
	if train {
		if err := trainModels(fw, trainQueries, modelsPath); err != nil {
			return err
		}
	}

	secs, err := fw.PredictQuerySeconds(est)
	if err != nil {
		return err
	}
	wrd, err := fw.WRD(est)
	if err != nil {
		return err
	}
	fmt.Printf("\nPredicted response time (alone on 9-node cluster): %.1f s\n", secs)
	fmt.Printf("Weighted Resource Demand (Eq. 10):                 %.0f task-seconds\n", wrd)
	for _, je := range est.Jobs {
		js, err := fw.PredictJobSeconds(je)
		if err != nil {
			return err
		}
		fmt.Printf("  %s predicted job time (Eq. 8): %.1f s\n", je.Job.ID, js)
	}
	if err := simulate(fw, o, est, traceFile, traceOut, promOut, scheduler, seed, fp); err != nil {
		return err
	}
	if err := serveAdmin(fw, sql, scheduler, seed, admin); err != nil {
		return err
	}
	return serveNet(fw, scheduler, listen)
}

// trainModels fits the time models on a synthetic corpus and saves
// them when a models path is given.
func trainModels(fw *saqp.Framework, trainQueries int, modelsPath string) error {
	fmt.Printf("\nTraining time models on %d synthetic queries...\n", trainQueries)
	cfg := saqp.DefaultExperimentConfig()
	cfg.CorpusQueries = trainQueries
	art, err := saqp.BuildTrainedArtifacts(cfg)
	if err != nil {
		return err
	}
	fw.JobTime, fw.TaskTime = art.Jobs, art.Tasks
	if modelsPath != "" {
		data, err := fw.SaveModels("trained by cmd/saqp")
		if err != nil {
			return err
		}
		if err := os.WriteFile(modelsPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("Saved trained models to %s\n", modelsPath)
	}
	return nil
}

// runCluster hosts the sharded serving cluster until SIGINT/SIGTERM:
// shards primary/replica engine pairs behind TCP frontends, with a
// wall-clock heartbeat driving the sentinel loop and a deterministic
// fault plan (seeded by -fault-seed) crashing primaries so failovers
// actually happen while you watch.
func runCluster(shards int, sf float64, train bool, trainQueries int, modelsPath, scheduler string, faultSeed uint64) error {
	fw, err := saqp.NewFramework(saqp.Options{ScaleFactor: sf, Observer: saqp.NewObserver(nil)})
	if err != nil {
		return err
	}
	if modelsPath != "" {
		if data, err := os.ReadFile(modelsPath); err == nil {
			if err := fw.LoadModels(data); err != nil {
				return fmt.Errorf("loading %s: %w", modelsPath, err)
			}
			fmt.Printf("Loaded trained models from %s\n", modelsPath)
			train = false
		}
	}
	if train {
		if err := trainModels(fw, trainQueries, modelsPath); err != nil {
			return err
		}
	}
	// Every primary crashes once inside the first two simulated minutes
	// and stays down 45 heartbeats — long past the sentinel's detection
	// window, so each shard demonstrates a full crash → votes → failover
	// → rejoin cycle.
	plan := saqp.NewFaultPlan(saqp.FaultSpec{
		Seed:             faultSeed,
		Nodes:            shards,
		HorizonSec:       120,
		CrashProb:        1,
		CrashDowntimeSec: 45,
	})
	cs, err := fw.NewClusterServer(saqp.ClusterOptions{
		Shards:       shards,
		Scheduler:    scheduler,
		Listen:       true,
		FaultPlan:    plan,
		SentinelSeed: faultSeed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Sharded cluster live: %d shards, %d slots\n", shards, cs.Status().Slots)
	for _, line := range cs.Info() {
		fmt.Println("  " + line)
	}
	fmt.Println("Cluster wire protocol: SUBMIT/EXPLAIN answer -MOVED <slot> <addr> when a query")
	fmt.Println("belongs to another instance; CLUSTER prints the topology. Ctrl-C to shut down.")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("shutting down")
			fmt.Printf("failover event log (%d events):\n%s", len(cs.Events()), cs.EventsJSON())
			return cs.Close()
		case <-ticker.C:
			for _, e := range cs.Tick() {
				switch e.Kind {
				case saqp.ClusterEventFailover:
					fmt.Printf("[tick %d] shard %d FAILOVER: replica promoted by %d votes, epoch %d\n",
						e.Tick, e.Shard, e.Votes, e.Epoch)
				case saqp.ClusterEventVote:
					fmt.Printf("[tick %d] shard %d: sentinel %d votes down\n", e.Tick, e.Shard, e.Sentinel)
				default:
					fmt.Printf("[tick %d] shard %d: %s\n", e.Tick, e.Shard, e.Kind)
				}
			}
		}
	}
}

// netDrainTimeout bounds the graceful drain after SIGINT/SIGTERM
// before remaining connections are torn down.
const netDrainTimeout = 30 * time.Second

// serveNet hosts the TCP query frontend until SIGINT/SIGTERM, then
// drains it and closes the serving engine. A no-op when addr is empty.
func serveNet(fw *saqp.Framework, scheduler, addr string) error {
	if addr == "" {
		return nil
	}
	srv, err := fw.NewServer(saqp.ServerOptions{Scheduler: scheduler})
	if err != nil {
		return err
	}
	ns, err := fw.NewNetServer(srv, saqp.NetOptions{Addr: addr, BusyQueueDepth: 256})
	if err != nil {
		srv.Close()
		return err
	}
	mode := "untrained (FIFO admission)"
	if fw.TaskTime != nil {
		mode = "trained (WRD admission)"
	}
	fmt.Printf("\nTCP query frontend live at %s, models %s\n", ns.Addr(), mode)
	fmt.Println("Commands (inline or RESP arrays, CRLF-terminated): SUBMIT / WAIT / STATS / EXPLAIN / METRICS / PING / QUIT.")
	fmt.Println("Ctrl-C (SIGINT/SIGTERM) to drain and shut down.")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	<-sig
	fmt.Println("draining connections")
	ctx, cancel := context.WithTimeout(context.Background(), netDrainTimeout)
	defer cancel()
	if err := ns.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "saqp: drain incomplete:", err)
	}
	return srv.Close()
}

// serveAdmin serves the query once through the concurrent serving engine
// with tracing and SLO tracking on, then holds the process (and the
// admin introspection endpoint) open until SIGINT/SIGTERM. A no-op when
// addr is empty.
func serveAdmin(fw *saqp.Framework, sql, scheduler string, seed uint64, addr string) error {
	if addr == "" {
		return nil
	}
	srv, err := fw.NewServer(saqp.ServerOptions{
		Scheduler: scheduler,
		AdminAddr: addr,
	})
	if err != nil {
		return err
	}
	ctx := context.Background()
	tk, err := srv.Submit(ctx, sql, seed)
	if err != nil {
		return err
	}
	res, err := tk.Wait(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\nServed query through the engine: %.1f s simulated (%d attempt(s))\n",
		res.SimSec, res.Attempts)
	fmt.Printf("admin endpoint live at %s — try:\n", srv.AdminURL())
	fmt.Printf("  curl %s/metrics\n  curl %s/spans\n  curl %s/slo\n", srv.AdminURL(), srv.AdminURL(), srv.AdminURL())
	fmt.Println("Ctrl-C (SIGINT/SIGTERM) to shut down.")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	<-sig
	fmt.Println("shutting down")
	return srv.Close()
}

// simulate runs the estimated query on the simulated cluster when an
// observer was requested or a fault plan is set, then flushes the trace
// and metrics outputs.
func simulate(fw *saqp.Framework, o *saqp.Observer, est *saqp.QueryEstimate,
	traceFile *os.File, traceOut, promOut, scheduler string, seed uint64, fp *saqp.FaultPlan) error {
	if o == nil && fp == nil {
		return nil
	}
	cc := saqp.DefaultClusterConfig()
	cc.Faults = fp
	secs, err := fw.SimulateQueryConfig("q1", est, scheduler, seed, cc)
	if err != nil {
		return err
	}
	mode := ""
	if fp != nil {
		mode = ", faults injected"
	}
	fmt.Printf("\nSimulated response time (alone, %s%s): %.1f s\n", scheduler, mode, secs)
	if o == nil {
		return nil
	}
	if err := o.Close(); err != nil {
		return err
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Printf("Wrote trace to %s (open in ui.perfetto.dev)\n", traceOut)
	}
	if promOut != "" {
		f, err := os.Create(promOut)
		if err != nil {
			return err
		}
		if err := o.Metrics.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("Wrote metrics to %s\n", promOut)
	}
	return nil
}

func gb(b float64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2fGB", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.1fMB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.0fKB", b/1e3)
	}
	return fmt.Sprintf("%.0fB", b)
}
