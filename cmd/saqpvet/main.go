// Command saqpvet is the project's static-analysis driver. It runs the
// saqp-specific analyzers — determinism, doccheck, floatcmp, lockcheck,
// errdrop, and the dataflow tier's allocfree, ctxleak, atomiccheck and
// leakcheck (see internal/analysis and internal/analysis/registry) — in
// two modes:
//
// Standalone, over package patterns:
//
//	saqpvet ./...
//
// As a `go vet` tool, speaking the vet unit-checker protocol (-flags,
// -V=full, and per-package *.cfg files with compiler export data):
//
//	go vet -vettool=$(which saqpvet) ./...
//
// Both modes honour reasoned suppression directives (see the syntax in
// internal/analysis/suppress.go) and exit non-zero when any finding
// survives, so `make lint` and CI fail
// on a violated invariant. The implementation uses only the standard
// library: standalone mode type-checks module packages from source
// (offline, via GOROOT), and vettool mode reads the export data that
// the go command already produced.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"saqp/internal/analysis"
	"saqp/internal/analysis/registry"
)

// analyzers is the full suite; the registry is the single source of
// truth shared with the in-repo self-tests.
var analyzers = registry.All()

func main() {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-flags" || a == "--flags":
			// The go command queries the tool's flag set as JSON; we
			// expose none beyond the protocol itself.
			fmt.Println("[]")
			return
		case strings.HasPrefix(a, "-V"):
			// Version fingerprint for the go command's build cache.
			fmt.Printf("%s version devel comments-go-here buildID=something\n", progname)
			return
		case a == "help" || a == "-h" || a == "--help":
			usage(progname)
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}

func usage(progname string) {
	fmt.Printf("%s enforces saqp's determinism, float-safety, concurrency and\nhot-path allocation invariants.\n\n", progname)
	fmt.Printf("usage:\n  %s [packages]            standalone (default ./...)\n", progname)
	fmt.Printf("  go vet -vettool=%s ./...  as a vet plugin\n\nanalyzers:\n", progname)
	for _, a := range analyzers {
		fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Printf("\nsuppress a reviewed finding with: //lint:allow saqpvet/<analyzer> <reason>\n")
	fmt.Printf("(the reason is mandatory; reasonless or misspelled directives are themselves reported)\n")
	fmt.Printf("mark an allocation-free function with a //saqp:hotpath doc-comment directive\n")
}

// standalone loads and checks packages by pattern, printing findings
// relative to the current directory. Exit status: 0 clean, 1 findings,
// 2 operational error.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		log.Print(err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		log.Print(err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		log.Print(err)
		return 2
	}

	var dirs []string
	for _, p := range patterns {
		switch {
		case p == "./..." || p == "...":
			ds, err := analysis.ModuleDirs(root)
			if err != nil {
				log.Print(err)
				return 2
			}
			dirs = append(dirs, ds...)
		case strings.HasSuffix(p, "/..."):
			ds, err := analysis.ModuleDirs(filepath.Join(cwd, strings.TrimSuffix(p, "/...")))
			if err != nil {
				log.Print(err)
				return 2
			}
			dirs = append(dirs, ds...)
		default:
			dirs = append(dirs, filepath.Join(cwd, p))
		}
	}

	found := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			log.Print(err)
			return 2
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			log.Print(err)
			return 2
		}
		for _, d := range diags {
			pos := d.Pos
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
			fmt.Printf("%s: %s (saqpvet/%s)\n", pos, d.Message, d.Analyzer)
			found++
		}
	}
	if found > 0 {
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON the go command writes for each vetted
// package (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgFile, per the
// go vet tool protocol.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Print(err)
		return 2
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Printf("cannot decode vet config %s: %v", cfgFile, err)
		return 2
	}

	// The go command expects the facts file to exist even though these
	// analyzers produce no cross-package facts.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				log.Print(err)
			}
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			log.Print(err)
			return 2
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path; the go command supplies the
		// export-data file it compiled for every dependency.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := resolverFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		log.Print(err)
		return 2
	}

	writeVetx()
	if cfg.VetxOnly {
		return 0
	}

	pkg := &analysis.Package{
		Path:      cfg.ImportPath,
		Fset:      fset,
		Files:     files,
		Filenames: cfg.GoFiles,
		Types:     tpkg,
		TypesInfo: info,
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		log.Print(err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (saqpvet/%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

type resolverFunc func(path string) (*types.Package, error)

func (f resolverFunc) Import(path string) (*types.Package, error) { return f(path) }
