package saqp_test

// Facade-level observability tests: the drift recorder must reproduce the
// accuracy tables, SimulateQuery must be deterministic and fully
// instrumented, and the experiment drivers must feed the observer.

import (
	"bytes"
	"math"
	"testing"

	"saqp"
)

// TestCorpusDriftMatchesAccuracyTables: replaying the training corpus
// through the drift recorder must reproduce the per-category mean
// relative error and R² of Tables 3-5 (computed independently by the
// predict package) to within floating-point noise.
func TestCorpusDriftMatchesAccuracyTables(t *testing.T) {
	a, _ := artifacts(t)
	o := saqp.NewObserver(nil)
	saqp.RecordCorpusDrift(a, o)
	drift := o.Drift.Snapshot()

	const tol = 1e-9
	check := func(kind, category string, rows []saqp.DriftSummary, want saqp.GroupAccuracy) {
		t.Helper()
		for _, s := range rows {
			if s.Category != category {
				continue
			}
			if s.N != want.N {
				t.Errorf("%s %s: n = %d, accuracy table has %d", kind, category, s.N, want.N)
			}
			if math.Abs(s.MeanRelError-want.AvgError) > tol {
				t.Errorf("%s %s: mean rel err %v, accuracy table %v", kind, category, s.MeanRelError, want.AvgError)
			}
			// The recorder computes R² from running sums, the table from
			// two passes; they agree to far better than table precision.
			if math.Abs(s.RSquared-want.RSquared) > 1e-6 {
				t.Errorf("%s %s: R² %v, accuracy table %v", kind, category, s.RSquared, want.RSquared)
			}
			return
		}
		t.Errorf("%s: no drift category %q", kind, category)
	}

	res := saqp.ReproduceTable3(a)
	for _, row := range res.TrainRows {
		if row.Op == "All" {
			continue // the recorder keys by category only
		}
		check("job", row.Op, drift.Jobs, row)
	}
	for _, row := range saqp.ReproduceTable4(a) {
		if row.Op == "Together" {
			continue
		}
		check("map task", row.Op+"/map", drift.Tasks, row)
	}
	for _, row := range saqp.ReproduceTable5(a) {
		if row.Op == "Together" {
			continue
		}
		check("reduce task", row.Op+"/reduce", drift.Tasks, row)
	}
}

// TestSimulateQueryDeterministicTrace: two instrumented SimulateQuery
// runs with the same seed produce byte-identical traces and metrics.
func TestSimulateQueryDeterministicTrace(t *testing.T) {
	run := func() ([]byte, []byte, float64) {
		var traceBuf bytes.Buffer
		o := saqp.NewObserver(saqp.NewTraceSink(&traceBuf))
		fw, err := saqp.NewFramework(saqp.Options{ScaleFactor: 2, Observer: o})
		if err != nil {
			t.Fatal(err)
		}
		dag, err := fw.Compile(`SELECT c_name, count(*) FROM customer
			JOIN orders ON o_custkey = c_custkey GROUP BY c_name`)
		if err != nil {
			t.Fatal(err)
		}
		est, err := fw.Estimate(dag)
		if err != nil {
			t.Fatal(err)
		}
		secs, err := fw.SimulateQuery("q1", est, saqp.SchedulerSWRD, 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Close(); err != nil {
			t.Fatal(err)
		}
		var promBuf bytes.Buffer
		if err := o.Metrics.WritePrometheus(&promBuf); err != nil {
			t.Fatal(err)
		}
		return traceBuf.Bytes(), promBuf.Bytes(), secs
	}
	t1, p1, s1 := run()
	t2, p2, s2 := run()
	if s1 != s2 {
		t.Fatalf("response time differs across seeded runs: %v vs %v", s1, s2)
	}
	if s1 <= 0 {
		t.Fatalf("response time = %v, want positive", s1)
	}
	if !bytes.Equal(t1, t2) {
		t.Error("trace differs across seeded runs")
	}
	if !bytes.Equal(p1, p2) {
		t.Error("metrics differ across seeded runs")
	}
	if len(t1) == 0 || !bytes.Contains(t1, []byte(`"cat":"query"`)) {
		t.Error("trace missing query lifecycle events")
	}
	if !bytes.Contains(p1, []byte("saqp_framework_compiles_total 1")) {
		t.Errorf("framework counters missing from exposition:\n%s", p1)
	}
	if !bytes.Contains(p1, []byte("saqp_framework_simulations_total 1")) {
		t.Error("simulation counter missing from exposition")
	}
}

// TestFig2Observed: the motivation experiment must feed the observer —
// scheduler decisions, cluster lifecycle metrics, selectivity estimate
// drift and (given trained models) job-time drift.
func TestFig2Observed(t *testing.T) {
	a, cfg := artifacts(t)
	var traceBuf bytes.Buffer
	o := saqp.NewObserver(saqp.NewTraceSink(&traceBuf))
	cfg.Observer = o
	if _, err := saqp.ReproduceFig2(saqp.SchedulerSWRD, a, cfg); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if got := o.Metrics.Counter("saqp_cluster_queries_completed_total").Value(); got != 3 {
		t.Errorf("concurrent run should complete 3 queries, metrics say %v (alone runs must stay uninstrumented)", got)
	}
	if o.Metrics.Counter("saqp_sched_decisions_total").Value() == 0 {
		t.Error("no scheduler decisions recorded")
	}
	drift := o.Drift.Snapshot()
	if len(drift.Estimates) == 0 {
		t.Error("no selectivity estimate drift recorded")
	}
	if len(drift.Jobs) == 0 {
		t.Error("no job-time drift recorded")
	}
	for _, s := range drift.Estimates {
		if s.N == 0 {
			t.Errorf("estimate drift category %s empty", s.Category)
		}
	}
	if !bytes.Contains(traceBuf.Bytes(), []byte("SWRD")) {
		t.Error("trace missing scheduler decision events")
	}
}
