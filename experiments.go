package saqp

import (
	"fmt"
	"math"

	"saqp/internal/cluster"
	"saqp/internal/core"
	"saqp/internal/plan"
	"saqp/internal/predict"
	"saqp/internal/sched"
	"saqp/internal/selectivity"
	"saqp/internal/sim"
	"saqp/internal/trace"
	"saqp/internal/workload"
)

// This file contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (Section 5). Each driver returns
// structured results; cmd/benchrunner and bench_test.go print them in the
// paper's row/series format.

// ExperimentConfig bundles the shared experiment knobs.
type ExperimentConfig struct {
	// CorpusQueries sizes the training/evaluation corpus (paper: ~1,000).
	CorpusQueries int
	// Seed drives all randomness.
	Seed uint64
	// Cluster sizes the simulated testbed.
	Cluster cluster.Config
	// Observer, when non-nil, instruments the simulated workload runs
	// (Fig. 2 and Fig. 8): trace spans, cluster metrics, scheduler
	// decisions, and prediction drift per job category.
	Observer *Observer
}

// DefaultExperimentConfig mirrors the paper's setup at a size that runs in
// seconds. For the full-scale run set CorpusQueries to 1000.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		CorpusQueries: 240,
		Seed:          2018,
		Cluster:       cluster.DefaultConfig(),
	}
}

// TrainedArtifacts holds everything trained once and shared by experiments.
type TrainedArtifacts struct {
	Corpus *workload.Corpus
	Train  *workload.Corpus
	Test   *workload.Corpus
	Jobs   *predict.JobModel
	Tasks  *predict.TaskModel
}

// BuildTrainedArtifacts generates the corpus (paper Section 5.1: TPC-H and
// TPC-DS queries over 1–100 GB, 3/4 train, 1/4 test) and fits the models.
func BuildTrainedArtifacts(cfg ExperimentConfig) (*TrainedArtifacts, error) {
	ccfg := workload.DefaultCorpusConfig()
	if cfg.CorpusQueries > 0 {
		ccfg.NumQueries = cfg.CorpusQueries
	}
	if cfg.Seed != 0 {
		ccfg.Seed = cfg.Seed
	}
	ccfg.Cluster = cfg.Cluster
	corpus, err := workload.BuildCorpus(ccfg)
	if err != nil {
		return nil, err
	}
	train, test := corpus.Split(0.75)
	jm, err := predict.FitJobModel(train.JobSamples)
	if err != nil {
		return nil, err
	}
	tm, err := predict.FitTaskModel(train.TaskSamples)
	if err != nil {
		return nil, err
	}
	return &TrainedArtifacts{Corpus: corpus, Train: train, Test: test, Jobs: jm, Tasks: tm}, nil
}

// RecordCorpusDrift replays the artifacts' training samples through an
// observer's drift recorder, scoring each with exactly the model the
// accuracy tables use, so the live drift snapshot reproduces the
// per-category mean relative error of Tables 3–5.
func RecordCorpusDrift(a *TrainedArtifacts, o *Observer) {
	if a == nil || o == nil || o.Drift == nil {
		return
	}
	for _, s := range a.Train.JobSamples {
		o.Drift.RecordJob(s.Op.String(), a.Jobs.PredictSample(s), s.Seconds, false)
	}
	for _, s := range a.Train.TaskSamples {
		o.Drift.RecordTask(s.Op.String(), s.Reduce, a.Tasks.PredictTaskSample(s), s.Seconds, false)
	}
}

// overheadsFor translates a cluster config into predictor overheads.
func overheadsFor(cc cluster.Config) predict.Overheads {
	return predict.Overheads{SchedPerTaskSec: cc.SchedulingOverheadSec, JobInitSec: cc.JobInitSec}
}

// slotsFor translates a cluster config into per-phase slot capacities.
func slotsFor(cc cluster.Config) predict.Slots {
	s := predict.Slots{Map: cc.Nodes * cc.MapSlotsPerNode, Reduce: cc.Nodes * cc.ReduceSlotsPerNode}
	if s.Map <= 0 || s.Reduce <= 0 {
		return predict.DefaultSlots()
	}
	return s
}

// ---------------------------------------------------------------------------
// Table 3 + Figure 6: job time prediction accuracy
// ---------------------------------------------------------------------------

// Table3Result is the accuracy summary of the job-time model.
type Table3Result struct {
	// TrainRows reproduces Table 3's per-operator rows (training set).
	TrainRows []GroupAccuracy
	// TestSetAvgError is the paper's "TestSet" row: prediction-time
	// features (estimated, not observed) against observed job times.
	TestSetAvgError float64
	TestSetJobs     int
}

// ScatterPoint is one (actual, predicted) pair — Figures 6 and 7.
type ScatterPoint struct {
	Actual, Predicted float64
	Operator          string
}

// ReproduceTable3 evaluates the Eq. 8 job model like the paper's Table 3.
func ReproduceTable3(a *TrainedArtifacts) Table3Result {
	res := Table3Result{TrainRows: a.Jobs.JobAccuracyByOperator(a.Train.JobSamples)}
	var sum float64
	for _, run := range a.Test.Runs {
		for ji, je := range run.Est.Jobs {
			sj := run.Sim.Jobs[ji]
			actual := sj.DoneTime - sj.SubmitTime
			if actual <= 0 {
				continue
			}
			sum += math.Abs(a.Jobs.PredictJob(je)-actual) / actual
			res.TestSetJobs++
		}
	}
	if res.TestSetJobs > 0 {
		res.TestSetAvgError = sum / float64(res.TestSetJobs)
	}
	return res
}

// ReproduceFig6 returns the test-set scatter of actual vs predicted job
// execution times (Figure 6).
func ReproduceFig6(a *TrainedArtifacts) []ScatterPoint {
	var pts []ScatterPoint
	for _, run := range a.Test.Runs {
		for ji, je := range run.Est.Jobs {
			sj := run.Sim.Jobs[ji]
			actual := sj.DoneTime - sj.SubmitTime
			pts = append(pts, ScatterPoint{
				Actual:    actual,
				Predicted: a.Jobs.PredictJob(je),
				Operator:  je.Job.Type.String(),
			})
		}
	}
	return pts
}

// ---------------------------------------------------------------------------
// Tables 4 and 5: task time prediction accuracy
// ---------------------------------------------------------------------------

// ReproduceTable4 evaluates the map-task model per operator (training set).
func ReproduceTable4(a *TrainedArtifacts) []GroupAccuracy {
	return a.Tasks.TaskAccuracyByOperator(a.Train.TaskSamples, false)
}

// ReproduceTable5 evaluates the reduce-task model per operator (training
// set).
func ReproduceTable5(a *TrainedArtifacts) []GroupAccuracy {
	return a.Tasks.TaskAccuracyByOperator(a.Train.TaskSamples, true)
}

// ---------------------------------------------------------------------------
// Figure 7: query response time prediction on 100 GB queries
// ---------------------------------------------------------------------------

// Fig7Result is the query-level prediction validation.
type Fig7Result struct {
	Points   []ScatterPoint
	AvgError float64
}

// ReproduceFig7 predicts whole-query response times for fresh 100 GB
// queries via the task model composed along the critical path, and compares
// with simulated standalone execution (paper: avg error 8.3%).
func ReproduceFig7(a *TrainedArtifacts, cfg ExperimentConfig, numQueries int) (Fig7Result, error) {
	if numQueries <= 0 {
		numQueries = 15
	}
	gen := workload.NewGenerator(cfg.Seed ^ 0xf1677)
	estCache := workload.NewCatalogCache(64)
	oraCache := workload.NewCatalogCache(1024)
	cm := defaultCostModel(cfg.Seed ^ 0x7fe)
	slots := slotsFor(cfg.Cluster)
	var res Fig7Result
	var sum float64
	for i := 0; i < numQueries; i++ {
		q, shape, err := gen.RandomQuery()
		if err != nil {
			return res, err
		}
		sf := workload.SFForTargetBytes(q, 100e9)
		run, err := workload.RunStandalone(q, shape, sf, estCache, oraCache, cm, cfg.Cluster)
		if err != nil {
			return res, err
		}
		pred := a.Tasks.PredictQuery(run.Est, slots, overheadsFor(cfg.Cluster))
		res.Points = append(res.Points, ScatterPoint{Actual: run.Seconds, Predicted: pred})
		if run.Seconds > 0 {
			sum += math.Abs(pred-run.Seconds) / run.Seconds
		}
	}
	res.AvgError = sum / float64(len(res.Points))
	return res, nil
}

// ---------------------------------------------------------------------------
// Figures 1–2: motivation — resource thrashing under HCS
// ---------------------------------------------------------------------------

// MotivationQuery is one of the three queries in the paper's motivating
// experiment (QA and QC: two-job 10 GB aggregations; QB: four-job 100 GB
// join query).
type MotivationQuery struct {
	Name       string
	Response   float64
	Alone      float64
	Slowdown   float64
	JobSpans   [][2]float64 // per job: first task start, last task end
	JobLabels  []string
	InputBytes float64
}

// MotivationResult is the Fig. 1–2 outcome for one scheduler.
type MotivationResult struct {
	Scheduler string
	Queries   []MotivationQuery
	Makespan  float64
}

// motivationSQL returns the three queries as the paper specifies them:
// QA/QC are instances of TPC-H Q14 ("evaluates the market response to a
// production promotion in one month") and QB is TPC-H Q17 — see
// workload.TPCHQuery for the canonical texts.
func motivationSQL() (qa, qb string) {
	q14, err := workload.TPCHQuery("q14")
	if err != nil {
		panic(err) // the canonical catalog is compiled-in; cannot fail
	}
	q17, err := workload.TPCHQuery("q17")
	if err != nil {
		panic(err)
	}
	return q14.String(), q17.String()
}

// ReproduceFig2 runs QA(10 GB), QB(100 GB), QC(10 GB) submitted 5 s apart
// under the named scheduler, plus each query alone, and reports response
// times and slowdowns. Under HCS the small queries' second jobs are starved
// behind QB's jobs — the thrashing of Figures 1–2.
func ReproduceFig2(scheduler string, a *TrainedArtifacts, cfg ExperimentConfig) (*MotivationResult, error) {
	pol, err := schedulerByName(scheduler)
	if err != nil {
		return nil, err
	}
	qaSQL, qbSQL := motivationSQL()
	type spec struct {
		name    string
		sql     string
		target  float64
		arrival float64
	}
	specs := []spec{
		{"QA", qaSQL, 10e9, 0},
		{"QB", qbSQL, 100e9, 5},
		{"QC", qaSQL, 10e9, 10},
	}
	fw, err := NewFramework(Options{Observer: cfg.Observer})
	if err != nil {
		return nil, err
	}
	estCache := workload.NewCatalogCache(64)
	oraCache := workload.NewCatalogCache(1024)

	build := func(cmSeed uint64, o *Observer) ([]*cluster.Query, []float64, []*selectivity.QueryEstimate, error) {
		cm := defaultCostModel(cmSeed)
		var qs []*cluster.Query
		var inputs []float64
		var ests []*selectivity.QueryEstimate
		for _, sp := range specs {
			d, err := fw.Compile(sp.sql)
			if err != nil {
				return nil, nil, nil, err
			}
			sf := workload.SFForTargetBytes(d.Query, sp.target)
			oracle, err := selectivity.NewEstimator(oraCache.Get(sf), selectivity.Config{}).EstimateQuery(d)
			if err != nil {
				return nil, nil, nil, err
			}
			est, err := selectivity.NewEstimator(estCache.Get(sf), selectivity.Config{}).EstimateQuery(d)
			if err != nil {
				return nil, nil, nil, err
			}
			cq := percolate(a, o, sp.name, oracle, est, cm)
			qs = append(qs, cq)
			inputs = append(inputs, oracle.TotalInputBytes())
			ests = append(ests, est)
		}
		return qs, inputs, ests, nil
	}

	// Concurrent run — the only one the observer instruments, so the trace
	// shows the thrashing rather than three quiet standalone runs.
	qs, inputs, ests, err := build(cfg.Seed^0x515, cfg.Observer)
	if err != nil {
		return nil, err
	}
	sim := cluster.New(cfg.Cluster, sched.Instrument(pol, cfg.Observer)).SetObserver(cfg.Observer)
	for i, q := range qs {
		sim.Submit(q, specs[i].arrival)
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	if a != nil {
		for i, q := range qs {
			recordJobDrift(cfg.Observer, a.Jobs, ests[i], q)
		}
	}

	// Alone runs (same cost-model seed → same task durations).
	alone := make([]float64, len(specs))
	for i := range specs {
		qs2, _, _, err := build(cfg.Seed^0x515, nil)
		if err != nil {
			return nil, err
		}
		s2 := cluster.New(cfg.Cluster, pol)
		s2.Submit(qs2[i], 0)
		if _, err := s2.Run(); err != nil {
			return nil, err
		}
		alone[i] = qs2[i].ResponseTime()
	}

	out := &MotivationResult{Scheduler: scheduler, Makespan: res.Makespan}
	for i, q := range qs {
		mq := MotivationQuery{
			Name:       specs[i].name,
			Response:   q.ResponseTime(),
			Alone:      alone[i],
			InputBytes: inputs[i],
		}
		if alone[i] > 0 {
			mq.Slowdown = q.ResponseTime() / alone[i]
		}
		for _, j := range q.Jobs {
			start, end := cluster.JobSpan(j)
			mq.JobSpans = append(mq.JobSpans, [2]float64{start, end})
			mq.JobLabels = append(mq.JobLabels, j.JobID+":"+j.Type.String())
		}
		out.Queries = append(out.Queries, mq)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 8: scheduler comparison on Bing and Facebook workloads
// ---------------------------------------------------------------------------

// Fig8Result is the average query response time of one (workload,
// scheduler) cell of Figure 8, with the per-bin breakdown behind the
// paper's fairness claim ("small queries can turn around faster while big
// queries still get their fair share").
type Fig8Result struct {
	Workload       string
	Scheduler      string
	AvgResponseSec float64
	P50Sec, P95Sec float64
	Makespan       float64
	Queries        int
	// AvgByBin maps Table 2 bin number to the bin's mean response time.
	AvgByBin map[int]float64
}

// percolate attaches the artifacts' semantics-aware predictions to a
// query (cross-layer semantics percolation, internal/core). A non-nil
// observer records the estimator's IS/FS output against the oracle
// values for each job.
func percolate(a *TrainedArtifacts, o *Observer, id string, truth, est *selectivity.QueryEstimate,
	cm *trace.CostModel) *cluster.Query {
	recordEstimateDrift(o, truth, est)
	var tm *predict.TaskModel
	if a != nil {
		tm = a.Tasks
	}
	return core.Percolate(id, truth, est, cm, tm).Query
}

// recordEstimateDrift logs per-job selectivity estimates (IS/FS) against
// the oracle catalog's values, keyed by operator category.
func recordEstimateDrift(o *Observer, truth, est *selectivity.QueryEstimate) {
	if o == nil || o.Drift == nil || truth == nil || est == nil {
		return
	}
	for ji, je := range est.Jobs {
		tj := truth.Jobs[ji]
		cat := je.Job.Type.String()
		o.Drift.RecordEstimate(cat, "IS", je.IS, tj.IS)
		o.Drift.RecordEstimate(cat, "FS", je.FS, tj.FS)
	}
}

// recordJobDrift logs Eq. 8 job-time predictions (from the estimator's
// features) against the simulated execution times of a finished query.
func recordJobDrift(o *Observer, jm *predict.JobModel, est *selectivity.QueryEstimate, q *cluster.Query) {
	if o == nil || o.Drift == nil || jm == nil || est == nil || q == nil {
		return
	}
	for ji, je := range est.Jobs {
		sj := q.Jobs[ji]
		if sj.DoneTime <= sj.SubmitTime {
			continue
		}
		o.Drift.RecordJob(je.Job.Type.String(), jm.PredictJob(je), sj.DoneTime-sj.SubmitTime, q.Faulted)
	}
}

// ReproduceFig8 runs one workload mix under the three schedulers and
// reports average query response times (paper Figure 8). meanGapSec sets
// the Poisson arrival rate; the paper's clusters are heavily loaded, so the
// default (10 s) keeps many queries in flight.
func ReproduceFig8(mix string, a *TrainedArtifacts, cfg ExperimentConfig, meanGapSec float64) ([]Fig8Result, error) {
	var comp []workload.BinSpec
	switch mix {
	case "bing":
		comp = workload.BingComposition()
	case "facebook":
		comp = workload.FacebookComposition()
	default:
		return nil, fmt.Errorf("saqp: unknown workload mix %q (want bing or facebook)", mix)
	}
	if meanGapSec <= 0 {
		meanGapSec = 10
	}
	w, err := workload.BuildWorkload(mix, comp, meanGapSec, cfg.Seed^0xfb8)
	if err != nil {
		return nil, err
	}

	// Pre-compile and estimate every item once; per-scheduler runs rebuild
	// the cluster queries (task state is per-run) with identical seeds.
	type item struct {
		dag         *plan.DAG
		est, oracle *selectivity.QueryEstimate
		arrival     float64
		name        string
		bin         int
	}
	estCache := workload.NewCatalogCache(64)
	oraCache := workload.NewCatalogCache(1024)
	items := make([]item, len(w.Items))
	for i, wi := range w.Items {
		d, err := plan.Compile(wi.Query)
		if err != nil {
			return nil, err
		}
		oracle, err := selectivity.NewEstimator(oraCache.Get(wi.SF), selectivity.Config{}).EstimateQuery(d)
		if err != nil {
			return nil, err
		}
		est, err := selectivity.NewEstimator(estCache.Get(wi.SF), selectivity.Config{}).EstimateQuery(d)
		if err != nil {
			return nil, err
		}
		items[i] = item{dag: d, est: est, oracle: oracle, arrival: wi.ArrivalSec,
			name: fmt.Sprintf("%s-%03d", mix, i), bin: wi.Bin}
	}

	var out []Fig8Result
	for si, name := range []string{SchedulerHCS, SchedulerHFS, SchedulerSWRD} {
		pol, err := schedulerByName(name)
		if err != nil {
			return nil, err
		}
		cm := defaultCostModel(cfg.Seed ^ 0xc0ffee)
		sim := cluster.New(cfg.Cluster, sched.Instrument(pol, cfg.Observer)).SetObserver(cfg.Observer)
		// Estimate drift is per-query, not per-run: record it only on the
		// first scheduler pass so replays don't triple-count samples.
		po := cfg.Observer
		if si > 0 {
			po = nil
		}
		var queries []*cluster.Query
		for _, it := range items {
			cq := percolate(a, po, it.name, it.oracle, it.est, cm)
			queries = append(queries, cq)
			sim.Submit(cq, it.arrival)
		}
		res, err := sim.Run()
		if err != nil {
			return nil, fmt.Errorf("saqp: %s under %s: %w", mix, name, err)
		}
		if a != nil {
			for qi, q := range queries {
				recordJobDrift(cfg.Observer, a.Jobs, items[qi].est, q)
			}
		}
		byBin := map[int]float64{}
		binN := map[int]int{}
		for i, q := range queries {
			byBin[items[i].bin] += q.ResponseTime()
			binN[items[i].bin]++
		}
		for bin := range byBin {
			byBin[bin] /= float64(binN[bin])
		}
		out = append(out, Fig8Result{
			Workload:       mix,
			Scheduler:      name,
			AvgResponseSec: res.AvgResponseTime(),
			P50Sec:         res.PercentileResponse(0.5),
			P95Sec:         res.PercentileResponse(0.95),
			Makespan:       res.Makespan,
			Queries:        len(queries),
			AvgByBin:       byBin,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 2: workload composition
// ---------------------------------------------------------------------------

// Table2Row is one bin of the workload composition table.
type Table2Row struct {
	Bin       int
	InputDesc string
	Bing      int
	Facebook  int
}

// ReproduceTable2 returns the composition of the Bing and Facebook mixes.
func ReproduceTable2() []Table2Row {
	bing, fb := workload.BingComposition(), workload.FacebookComposition()
	desc := []string{"1-10 GB", "20 GB", "50 GB", "100 GB", ">100 GB"}
	rows := make([]Table2Row, len(bing))
	for i := range bing {
		rows[i] = Table2Row{Bin: bing[i].Bin, InputDesc: desc[i], Bing: bing[i].Count, Facebook: fb[i].Count}
	}
	return rows
}

// ---------------------------------------------------------------------------
// Figure 5 / Section 3.2: selectivity estimation walk-through
// ---------------------------------------------------------------------------

// Fig5Job is one job row in the Q11 walk-through.
type Fig5Job struct {
	ID       string
	Type     string
	IS, FS   float64
	OutRows  float64
	InBytes  float64
	OutBytes float64
}

// ReproduceFig5 runs the paper's modified TPC-H Q11 example through the
// estimator at scale factor 1 and returns the per-job selectivities: the
// nation predicate passes 96% (24 of 25 nations) and the final groupby
// cardinality approaches the 200,000 ps_partkey domain.
func ReproduceFig5() ([]Fig5Job, error) {
	fw, err := NewFramework(Options{ScaleFactor: 1})
	if err != nil {
		return nil, err
	}
	d, err := fw.Compile(`SELECT ps_partkey, sum(ps_supplycost*ps_availqty)
		FROM nation n JOIN supplier s ON s.s_nationkey = n.n_nationkey AND n.n_name <> 'n_name#b~~~~'
		JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
		GROUP BY ps_partkey`)
	if err != nil {
		return nil, err
	}
	qe, err := fw.Estimate(d)
	if err != nil {
		return nil, err
	}
	var rows []Fig5Job
	for _, je := range qe.Jobs {
		rows = append(rows, Fig5Job{
			ID:       je.Job.ID,
			Type:     je.Job.Type.String(),
			IS:       je.IS,
			FS:       je.FS,
			OutRows:  je.OutRows,
			InBytes:  je.InBytes,
			OutBytes: je.OutBytes,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fault replay: TPC-H under deterministic fault injection
// ---------------------------------------------------------------------------

// FaultReplayResult compares one TPC-H replay run twice on the same
// cluster and scheduler: once clean and once under a fault plan. The
// inflation ratios quantify how much injected crashes, slowdowns and
// transient failures stretch the response-time distribution, and
// CompletionRate reports how much of the workload the recovery machinery
// (re-execution, backoff, blacklisting) carried to completion.
type FaultReplayResult struct {
	Scheduler string
	Queries   int
	// Completed and Failed partition the faulted run's queries; a failed
	// query carries a *TaskFailedError (attempt cap exhausted).
	Completed int
	Failed    int
	// CompletionRate is Completed / Queries of the faulted run.
	CompletionRate float64
	// Clean vs faulted response-time percentiles and their ratios.
	CleanP50Sec, CleanP99Sec   float64
	FaultP50Sec, FaultP99Sec   float64
	P50Inflation, P99Inflation float64
	// Makespans of the two runs.
	CleanMakespanSec, FaultMakespanSec float64
	// Faults tallies the faulted run's recovery activity.
	Faults FaultStats
}

// ReproduceFaultReplay replays the canonical TPC-H queries (rounds copies
// each, Poisson arrivals with meanGapSec) on cfg.Cluster twice — clean,
// then under fp — and reports the fault run's recovery outcome against
// the clean baseline. Both runs share per-query cost-model seeds, so
// every difference is attributable to the plan. a may be nil (constant
// task predictions); scheduler defaults to SWRD.
func ReproduceFaultReplay(a *TrainedArtifacts, cfg ExperimentConfig, fp *FaultPlan,
	scheduler string, rounds int, meanGapSec float64) (*FaultReplayResult, error) {
	if scheduler == "" {
		scheduler = SchedulerSWRD
	}
	pol, err := schedulerByName(scheduler)
	if err != nil {
		return nil, err
	}
	if rounds <= 0 {
		rounds = 3
	}
	if meanGapSec <= 0 {
		meanGapSec = 20
	}

	// Compile and estimate each canonical query once; arrivals come from a
	// seeded exponential clock shared by both runs.
	type item struct {
		est     *selectivity.QueryEstimate
		arrival float64
		name    string
		seed    uint64
	}
	cat := workload.NewCatalogCache(1024).Get(10)
	est := selectivity.NewEstimator(cat, selectivity.Config{})
	byName := map[string]*selectivity.QueryEstimate{}
	names := workload.TPCHNames()
	for _, name := range names {
		q, err := workload.TPCHQuery(name)
		if err != nil {
			return nil, err
		}
		d, err := plan.Compile(q)
		if err != nil {
			return nil, err
		}
		qe, err := est.EstimateQuery(d)
		if err != nil {
			return nil, err
		}
		byName[name] = qe
	}
	rng := sim.New(cfg.Seed ^ 0xfa017)
	var items []item
	clock := 0.0
	for r := 0; r < rounds; r++ {
		for _, name := range names {
			clock += -meanGapSec * math.Log(1-rng.Float64())
			items = append(items, item{
				est:     byName[name],
				arrival: clock,
				name:    fmt.Sprintf("%s-r%d", name, r),
				seed:    cfg.Seed ^ uint64(len(items))*0x9e3779b97f4a7c15,
			})
		}
	}

	var pred cluster.TaskTimePredictor = cluster.ConstantPredictor(1)
	if a != nil {
		pred = a.Tasks
	}
	run := func(cc cluster.Config) (*cluster.Results, error) {
		s := cluster.New(cc, sched.Instrument(pol, cfg.Observer)).SetObserver(cfg.Observer)
		for _, it := range items {
			cq := cluster.BuildQuery(it.name, it.est, defaultCostModel(it.seed), pred)
			s.Submit(cq, it.arrival)
		}
		return s.Run()
	}

	clean := cfg.Cluster
	clean.Faults = nil
	cres, err := run(clean)
	if err != nil {
		return nil, fmt.Errorf("saqp: fault replay clean run: %w", err)
	}
	faulted := cfg.Cluster
	faulted.Faults = fp
	fres, err := run(faulted)
	if err != nil {
		return nil, fmt.Errorf("saqp: fault replay faulted run: %w", err)
	}

	out := &FaultReplayResult{
		Scheduler:        scheduler,
		Queries:          len(items),
		Completed:        fres.Completed,
		Failed:           fres.Failed,
		CleanP50Sec:      cres.PercentileResponse(0.50),
		CleanP99Sec:      cres.PercentileResponse(0.99),
		FaultP50Sec:      fres.PercentileResponse(0.50),
		FaultP99Sec:      fres.PercentileResponse(0.99),
		CleanMakespanSec: cres.Makespan,
		FaultMakespanSec: fres.Makespan,
		Faults:           fres.Faults,
	}
	if out.Queries > 0 {
		out.CompletionRate = float64(out.Completed) / float64(out.Queries)
	}
	if out.CleanP50Sec > 0 {
		out.P50Inflation = out.FaultP50Sec / out.CleanP50Sec
	}
	if out.CleanP99Sec > 0 {
		out.P99Inflation = out.FaultP99Sec / out.CleanP99Sec
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Learning replay: error-vs-samples convergence of the online registry
// ---------------------------------------------------------------------------

// LearnReplayConfig controls the online-learning convergence replay.
type LearnReplayConfig struct {
	// Queries sizes the replayed corpus. Default 120.
	Queries int
	// Seed drives corpus generation. Default 2018.
	Seed uint64
	// Window, MinSamples and PromoteMargin configure the registry; zero
	// values take the registry defaults (100, 50, 0.05).
	Window        int
	MinSamples    int
	PromoteMargin float64
	// PointEvery is the job-sample stride between convergence points.
	// Default 25.
	PointEvery int
	// Cluster sizes the simulated testbed the corpus executed on.
	Cluster cluster.Config
	// Observer receives saqp_learn_* metrics during the replay.
	Observer *Observer
}

// LearnPoint is one error-vs-samples convergence measurement: the
// challenger's average relative error over the full job-sample stream
// after absorbing JobSamples observations.
type LearnPoint struct {
	JobSamples    int     `json:"job_samples"`
	Version       int     `json:"version"`
	ChallengerErr float64 `json:"challenger_err"`
}

// LearnReplayResult is the convergence replay's outcome. It carries no
// wall-clock fields: for a fixed config the serialised result is
// byte-identical across runs.
type LearnReplayResult struct {
	Queries     int          `json:"queries"`
	JobSamples  int          `json:"job_samples"`
	TaskSamples int          `json:"task_samples"`
	Promotions  []Promotion  `json:"promotions"`
	Points      []LearnPoint `json:"points"`
	// FinalChallengerErr scores the fully-fed challenger job model over
	// the whole stream; BatchErr scores a batch FitJobModel over the
	// same samples. The CI gate requires the former within 10% of the
	// latter (RLS through the shared solve path makes them equal up to
	// per-operator fallback differences).
	FinalChallengerErr float64 `json:"final_challenger_err"`
	BatchErr           float64 `json:"batch_err"`
	FinalVersion       int     `json:"final_version"`
}

// avgRelJobError scores a job model over samples with the paper's
// average-relative-error metric.
func avgRelJobError(jm *predict.JobModel, samples []predict.JobSample) float64 {
	var sum float64
	var n int
	for _, s := range samples {
		if s.Seconds <= 0 {
			continue
		}
		sum += math.Abs(jm.PredictSample(s)-s.Seconds) / s.Seconds
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ReproduceLearningReplay replays a generated corpus through a cold
// model-lifecycle registry, one completed run at a time, and reports
// error-vs-samples convergence, the promotion sequence, and the final
// challenger accuracy against a batch-trained baseline over the same
// stream. Everything is derived from the seeded corpus — no wall clock
// — so repeated runs produce byte-identical results.
func ReproduceLearningReplay(cfg LearnReplayConfig) (*LearnReplayResult, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 120
	}
	if cfg.Seed == 0 {
		cfg.Seed = 2018
	}
	if cfg.PointEvery <= 0 {
		cfg.PointEvery = 25
	}
	ccfg := workload.DefaultCorpusConfig()
	ccfg.NumQueries = cfg.Queries
	ccfg.Seed = cfg.Seed
	if cfg.Cluster.Nodes > 0 {
		ccfg.Cluster = cfg.Cluster
	}
	corpus, err := workload.BuildCorpus(ccfg)
	if err != nil {
		return nil, err
	}
	reg := NewLearnerRegistry(LearnerConfig{
		Window:        cfg.Window,
		MinSamples:    cfg.MinSamples,
		PromoteMargin: cfg.PromoteMargin,
		Observer:      cfg.Observer,
	})

	res := &LearnReplayResult{Queries: len(corpus.Runs)}
	nextPoint := cfg.PointEvery
	for _, run := range corpus.Runs {
		feedRunIntoLearner(reg, run)
		for reg.JobSamples() >= nextPoint {
			p := LearnPoint{JobSamples: nextPoint, Version: reg.Version()}
			if jm := reg.ChallengerJobModel(); jm != nil {
				p.ChallengerErr = avgRelJobError(jm, corpus.JobSamples)
			}
			res.Points = append(res.Points, p)
			nextPoint += cfg.PointEvery
		}
	}
	res.JobSamples = reg.JobSamples()
	res.TaskSamples = reg.TaskSamples()
	res.Promotions = reg.Promotions()
	res.FinalVersion = reg.Version()
	if jm := reg.ChallengerJobModel(); jm != nil {
		res.FinalChallengerErr = avgRelJobError(jm, corpus.JobSamples)
	}
	batch, err := predict.FitJobModel(corpus.JobSamples)
	if err != nil {
		return nil, fmt.Errorf("saqp: learning replay batch baseline: %w", err)
	}
	res.BatchErr = avgRelJobError(batch, corpus.JobSamples)
	return res, nil
}

// feedRunIntoLearner feeds one completed corpus run into the registry
// the same way the offline corpus collects samples: the observed job
// time with oracle (log-derived) features, plus a bounded number of
// task observations per group.
func feedRunIntoLearner(reg *Learner, run *workload.QueryRun) {
	const perPhase = 16
	for ji, je := range run.Oracle.Jobs {
		sj := run.Sim.Jobs[ji]
		if sec := sj.DoneTime - sj.SubmitTime; sec > 0 {
			reg.ObserveJob(je.Job.Type, predict.JobFeatures(je), sec)
		}
		pf := je.PFactor()
		idx := 0
		for _, g := range je.MapGroups {
			for i := 0; i < g.Count && i < perPhase; i++ {
				reg.ObserveTask(je.Job.Type, false,
					predict.TaskFeatures(je.Job.Type, g.InBytes, g.OutBytes, pf),
					sj.Maps[idx+i].ActualSec)
			}
			idx += g.Count
		}
		idx = 0
		for _, g := range je.ReduceGroups {
			for i := 0; i < g.Count && i < perPhase; i++ {
				reg.ObserveTask(je.Job.Type, true,
					predict.TaskFeatures(je.Job.Type, g.InBytes, g.OutBytes, pf),
					sj.Reds[idx+i].ActualSec)
			}
			idx += g.Count
		}
	}
}
