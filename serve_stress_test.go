package saqp_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"saqp"
)

// TestServerStress hammers one saqp.Server from 64 goroutines replaying
// the TPC-H mix (run under `go test -race` in CI). It asserts the
// serving layer's core invariants: no completion is lost or duplicated,
// repeated queries actually hit the plan/estimate cache, and canceled
// contexts never leak a pool worker.
func TestServerStress(t *testing.T) {
	fw, err := saqp.NewFramework(saqp.Options{Observer: saqp.NewObserver(nil)})
	if err != nil {
		t.Fatal(err)
	}
	names := saqp.TPCHNames()
	mix := make([]string, len(names))
	for i, n := range names {
		if mix[i], err = saqp.TPCHSQL(n); err != nil {
			t.Fatal(err)
		}
	}

	before := runtime.NumGoroutine()
	srv, err := fw.NewServer(saqp.ServerOptions{Workers: 8, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}

	const (
		submitters   = 64
		perSubmitter = 4
		total        = submitters * perSubmitter
	)
	var (
		completions int64 // successful Wait returns observed by submitters
		cancels     int64 // cancellations observed by submitters
		wg          sync.WaitGroup
	)
	start := make(chan struct{})
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perSubmitter; i++ {
				n := g*perSubmitter + i
				ctx := context.Background()
				// Every 16th submission races a pre-canceled context
				// through the pipeline: it must be counted as canceled
				// (or complete), never lost, and never leak a worker.
				canceled := n%16 == 0
				if canceled {
					c, cancel := context.WithCancel(ctx)
					cancel()
					ctx = c
				}
				tk, err := srv.Submit(ctx, mix[n%len(mix)], uint64(n%len(mix)))
				if err != nil {
					if canceled && errors.Is(err, context.Canceled) {
						atomic.AddInt64(&cancels, 1)
						continue
					}
					t.Errorf("submission %d failed: %v", n, err)
					continue
				}
				if _, err := tk.Wait(context.Background()); err != nil {
					if errors.Is(err, context.Canceled) {
						atomic.AddInt64(&cancels, 1)
						continue
					}
					t.Errorf("wait %d failed: %v", n, err)
					continue
				}
				atomic.AddInt64(&completions, 1)
			}
		}(g)
	}
	close(start)
	wg.Wait()

	st := srv.Stats()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Exactly-once completion accounting: every one of the 256
	// submissions was observed by its submitter as completed or
	// canceled, and the engine's own counters agree.
	if got := completions + cancels; got != total {
		t.Errorf("lost submissions: observed %d of %d", got, total)
	}
	if st.Completed != uint64(completions) {
		t.Errorf("engine counted %d completions, submitters observed %d", st.Completed, completions)
	}
	if st.Rejected != 0 || st.Errors != 0 {
		t.Errorf("unexpected rejections/errors: %+v", st)
	}

	// The mix repeats 7 queries across 256 submissions; the single-flight
	// cache must absorb nearly all of them.
	if hr := st.HitRate(); hr <= 0.5 {
		t.Errorf("cache hit-rate %.2f under stress, want > 0.5 (%+v)", hr, st)
	}

	// No leaked goroutines: the pool, and any timeout watchers, must be
	// gone after Close. Allow the runtime a few scheduling rounds to
	// retire exiting goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after Close\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSchedulerNamesFacade covers the facade's scheduler registry end to
// end: every advertised name builds a working server, and an unknown
// name fails with an error that enumerates the valid ones.
func TestSchedulerNamesFacade(t *testing.T) {
	fw, err := saqp.NewFramework(saqp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := saqp.SchedulerNames()
	if len(names) != 3 {
		t.Fatalf("SchedulerNames() = %v, want the paper's three policies", names)
	}
	for _, name := range names {
		srv, err := fw.NewServer(saqp.ServerOptions{Scheduler: name, Workers: 1})
		if err != nil {
			t.Errorf("NewServer(%q): %v", name, err)
			continue
		}
		srv.Close()
	}
	_, err = fw.NewServer(saqp.ServerOptions{Scheduler: "bogus"})
	if err == nil {
		t.Fatal("NewServer should reject an unknown scheduler")
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q should list valid scheduler %q", err, name)
		}
	}
}

// TestServerQueryTimeout exercises the facade's wall-clock guard: a
// submission whose deadline has passed must resolve as canceled, not
// hang a pool worker.
func TestServerQueryTimeout(t *testing.T) {
	fw, err := saqp.NewFramework(saqp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fw.NewServer(saqp.ServerOptions{Workers: 1, QueryTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sql, err := saqp.TPCHSQL("q6")
	if err != nil {
		t.Fatal(err)
	}
	tk, err := srv.Submit(context.Background(), sql, 1)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return // expired while joining the cache flight: fine
		}
		t.Fatalf("Submit: %v", err)
	}
	if _, err := tk.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		// A nanosecond deadline can occasionally lose the race against a
		// fast simulation; accept completion but not other errors.
		if err != nil {
			t.Fatalf("want DeadlineExceeded or success, got %v", err)
		}
	}
}
